//! A SQL subset over the SSB star schema, lowered into [`SsbQuery`]
//! descriptors.
//!
//! The grammar covers exactly what the engines can execute — the study's
//! descriptor algebra, nothing more:
//!
//! ```text
//! [EXPLAIN] SELECT <group cols,> SUM(<agg expr>)
//!           FROM lineorder [, <dim tables>]
//!           [WHERE <conjunct> [AND <conjunct>]...]
//!           [GROUP BY <cols>]
//!           [ORDER BY <cols> [ASC]]
//! ```
//!
//! * aggregate expressions: `SUM(lo_revenue)`,
//!   `SUM(lo_extendedprice * lo_discount)`,
//!   `SUM(lo_revenue - lo_supplycost)` — the three the SSBM uses;
//! * conjuncts: star joins (`lo_custkey = c_custkey`, required once per
//!   dimension table named in `FROM`), dimension predicates, and integer
//!   fact predicates, each one of `=`, `<`, `BETWEEN .. AND ..`, or
//!   `IN (..)`;
//! * `ORDER BY` must repeat the `GROUP BY` list ascending — results are
//!   always returned in normalized key order (see `QueryOutput::new`), so
//!   any other order would be a silently broken promise.
//!
//! Column names are globally unique in the SSB schema (`lo_`, `c_`, `s_`,
//! `p_`, `d_` prefixes), so identifiers resolve without qualification.
//!
//! Lowered queries that are semantically one of the 13 paper queries are
//! **canonicalized** to the paper descriptor (its `QueryId`, predicate
//! order, and `paper_selectivity`). This matters beyond cosmetics: the
//! planner's materialized-view candidates exist only for paper flights, so
//! canonicalization is what makes `Session::query(sql)` plan — and
//! therefore execute, byte-for-byte — exactly like the direct-descriptor
//! path. Everything else becomes an ad-hoc query under
//! [`ADHOC_FLIGHT`].

use cvr_data::queries::{
    all_queries, AggExpr, DimPredicate, FactPredicate, GroupColumn, Pred, QueryId, SsbQuery,
};
use cvr_data::schema::{star_schema, Dim, StarSchema};
use cvr_data::value::{DataType, Value};

/// Flight number assigned to ad-hoc SQL queries that match no paper query
/// (paper queries are flights 1..=4; the generated workload uses 9).
pub const ADHOC_FLIGHT: u8 = 0;

/// A parse or analysis failure, by category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed SQL: unexpected token, missing clause, bad literal.
    Syntax(String),
    /// An identifier that is no column of any SSB table.
    UnknownColumn(String),
    /// A `FROM` entry that is no SSB table.
    UnknownTable(String),
    /// A literal whose type does not match its column.
    TypeMismatch(String),
    /// Well-formed SQL outside the supported subset.
    Unsupported(String),
}

impl ParseError {
    /// Stable numeric code, used by the wire protocol's error frames.
    pub fn code(&self) -> u16 {
        match self {
            ParseError::Syntax(_) => 1,
            ParseError::UnknownColumn(_) => 2,
            ParseError::UnknownTable(_) => 3,
            ParseError::TypeMismatch(_) => 4,
            ParseError::Unsupported(_) => 5,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax(m) => write!(f, "syntax error: {m}"),
            ParseError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ParseError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            ParseError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ParseError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed statement.
#[derive(Debug, Clone)]
pub enum Statement {
    /// `SELECT ...` — execute and return rows.
    Select(SsbQuery),
    /// `EXPLAIN SELECT ...` — plan only, return the explain tree.
    Explain(SsbQuery),
    /// `EXPLAIN ANALYZE SELECT ...` — execute under tracing, return the
    /// explain tree annotated with measured actuals.
    ExplainAnalyze(SsbQuery),
    /// `SNAPSHOT` — write the served tables to the data directory as the
    /// next durable generation.
    Snapshot,
    /// `RELOAD` — load the newest valid generation from the data directory
    /// and swap it in as the served store.
    Reload,
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser { toks: lex(sql)?, at: 0 };
    // Admin statements: a bare keyword (plus optional `;`).
    for (kw, stmt) in [("SNAPSHOT", Statement::Snapshot), ("RELOAD", Statement::Reload)] {
        if p.eat_kw(kw) {
            p.eat_sym(';');
            if let Some(t) = p.peek() {
                return Err(ParseError::Syntax(format!("trailing input at `{t}`")));
            }
            return Ok(stmt);
        }
    }
    let explain = p.eat_kw("EXPLAIN");
    let analyze = explain && p.eat_kw("ANALYZE");
    let q = p.select()?;
    p.eat_sym(';');
    if let Some(t) = p.peek() {
        return Err(ParseError::Syntax(format!("trailing input at `{t}`")));
    }
    Ok(match (explain, analyze) {
        (true, true) => Statement::ExplainAnalyze(q),
        (true, false) => Statement::Explain(q),
        _ => Statement::Select(q),
    })
}

/// Parse a statement that must be a plain `SELECT`, returning the lowered
/// descriptor.
pub fn parse_query(sql: &str) -> Result<SsbQuery, ParseError> {
    match parse(sql)? {
        Statement::Select(q) => Ok(q),
        _ => Err(ParseError::Unsupported("expected a plain SELECT statement".into())),
    }
}

// ---------------------------------------------------------------------------
// Rendering: descriptor → SQL text
// ---------------------------------------------------------------------------

/// Render `q` back to SQL text in this module's subset.
///
/// The renderer and parser are inverses: `parse_query(render_sql(q))`
/// yields a descriptor with the same predicates (in the same order),
/// group-by, and aggregate — the round-trip property test pins this for
/// the 13 paper queries and the generated workload.
pub fn render_sql(q: &SsbQuery) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("SELECT ");
    for g in &q.group_by {
        let _ = write!(out, "{}, ", g.column);
    }
    out.push_str(agg_sql(q.aggregate));
    out.push_str(" FROM lineorder");
    let dims = q.touched_dims();
    for d in &dims {
        let _ = write!(out, ", {}", d.table_name());
    }
    let mut conjuncts: Vec<String> = Vec::new();
    for d in &dims {
        conjuncts.push(format!("{} = {}", d.fact_fk_column(), d.key_column()));
    }
    for p in &q.dim_predicates {
        conjuncts.push(pred_sql(p.column, &p.pred));
    }
    for p in &q.fact_predicates {
        conjuncts.push(pred_sql(p.column, &p.pred));
    }
    if !conjuncts.is_empty() {
        let _ = write!(out, " WHERE {}", conjuncts.join(" AND "));
    }
    if !q.group_by.is_empty() {
        let cols: Vec<&str> = q.group_by.iter().map(|g| g.column).collect();
        let _ = write!(out, " GROUP BY {0} ORDER BY {0}", cols.join(", "));
    }
    out
}

/// The SQL text of an aggregate expression.
pub fn agg_sql(agg: AggExpr) -> &'static str {
    match agg {
        AggExpr::SumExtendedPriceTimesDiscount => "SUM(lo_extendedprice * lo_discount)",
        AggExpr::SumRevenue => "SUM(lo_revenue)",
        AggExpr::SumRevenueMinusSupplyCost => "SUM(lo_revenue - lo_supplycost)",
    }
}

fn pred_sql(column: &str, pred: &Pred) -> String {
    match pred {
        Pred::Eq(v) => format!("{column} = {}", value_sql(v)),
        Pred::Between(lo, hi) => {
            format!("{column} BETWEEN {} AND {}", value_sql(lo), value_sql(hi))
        }
        Pred::Lt(v) => format!("{column} < {}", value_sql(v)),
        Pred::InSet(vs) => {
            let items: Vec<String> = vs.iter().map(value_sql).collect();
            format!("{column} IN ({})", items.join(", "))
        }
    }
}

fn value_sql(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier or keyword, original case preserved.
    Word(String),
    /// Integer literal.
    Int(i64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Single-character symbol: `( ) , * - = < ;`.
    Sym(char),
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "{w}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Sym(c) => write!(f, "{c}"),
        }
    }
}

fn lex(sql: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' | '-' | '=' | '<' | ';' => {
                toks.push(Tok::Sym(c));
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError::Syntax("unterminated string literal".into()))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &sql[start..i];
                let v: i64 = text.parse().map_err(|_| {
                    ParseError::Syntax(format!("integer literal `{text}` overflows"))
                })?;
                toks.push(Tok::Int(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'#')
                {
                    i += 1;
                }
                toks.push(Tok::Word(sql[start..i].to_string()));
            }
            _ => return Err(ParseError::Syntax(format!("unexpected character `{c}`"))),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser + lowering
// ---------------------------------------------------------------------------

/// Where a resolved column lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Table {
    Fact,
    Dim(Dim),
}

/// A resolved column: owning table, the schema's `'static` name, and type.
#[derive(Debug, Clone, Copy)]
struct ColumnRef {
    table: Table,
    name: &'static str,
    dtype: DataType,
}

fn schema() -> &'static StarSchema {
    static S: std::sync::OnceLock<StarSchema> = std::sync::OnceLock::new();
    S.get_or_init(star_schema)
}

fn resolve_column(name: &str) -> Option<ColumnRef> {
    let s = schema();
    for c in &s.lineorder.columns {
        if c.name == name {
            return Some(ColumnRef { table: Table::Fact, name: c.name, dtype: c.dtype });
        }
    }
    for d in Dim::ALL {
        for c in &s.dim(d).columns {
            if c.name == name {
                return Some(ColumnRef { table: Table::Dim(d), name: c.name, dtype: c.dtype });
            }
        }
    }
    None
}

fn resolve_table(name: &str) -> Option<Table> {
    if name == "lineorder" {
        return Some(Table::Fact);
    }
    Dim::ALL.into_iter().find(|d| d.table_name() == name).map(Table::Dim)
}

struct Parser {
    toks: Vec<Tok>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.at)
            .cloned()
            .ok_or_else(|| ParseError::Syntax("unexpected end of input".into()))?;
        self.at += 1;
        Ok(t)
    }

    /// Consume `kw` (case-insensitive) if it is next.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.at += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::Syntax(format!(
                "expected {kw}, got {}",
                self.peek().map_or("end of input".to_string(), |t| format!("`{t}`"))
            )))
        }
    }

    fn eat_sym(&mut self, sym: char) -> bool {
        if self.peek() == Some(&Tok::Sym(sym)) {
            self.at += 1;
            return true;
        }
        false
    }

    fn expect_sym(&mut self, sym: char) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(ParseError::Syntax(format!(
                "expected `{sym}`, got {}",
                self.peek().map_or("end of input".to_string(), |t| format!("`{t}`"))
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Word(w) => Ok(w.to_ascii_lowercase()),
            t => Err(ParseError::Syntax(format!("expected identifier, got `{t}`"))),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.next()? {
            Tok::Int(i) => Ok(Value::Int(i)),
            Tok::Str(s) => Ok(Value::str(s.as_str())),
            t => Err(ParseError::Syntax(format!("expected literal, got `{t}`"))),
        }
    }

    fn column(&mut self) -> Result<ColumnRef, ParseError> {
        let name = self.ident()?;
        resolve_column(&name).ok_or(ParseError::UnknownColumn(name))
    }

    // -- clauses ----------------------------------------------------------

    fn select(&mut self) -> Result<SsbQuery, ParseError> {
        self.expect_kw("SELECT")?;
        let (select_cols, aggregate) = self.select_list()?;
        self.expect_kw("FROM")?;
        let from = self.table_list()?;
        let mut w = WhereClauses::default();
        if self.eat_kw("WHERE") {
            self.conjuncts(&mut w)?;
        }
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            self.group_list()?
        } else {
            Vec::new()
        };
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            self.order_list(&group_by)?;
        }
        lower(select_cols, aggregate, from, w, group_by)
    }

    /// The select list: plain columns plus exactly one `SUM(...)`.
    fn select_list(&mut self) -> Result<(Vec<ColumnRef>, AggExpr), ParseError> {
        let mut cols = Vec::new();
        let mut agg = None;
        loop {
            if self.eat_kw("SUM") {
                if agg.is_some() {
                    return Err(ParseError::Unsupported(
                        "only one aggregate per query is supported".into(),
                    ));
                }
                agg = Some(self.sum_expr()?);
            } else {
                let col = self.column()?;
                if agg.is_some() {
                    return Err(ParseError::Unsupported(
                        "group columns must precede the aggregate in the select list".into(),
                    ));
                }
                cols.push(col);
            }
            if !self.eat_sym(',') {
                break;
            }
        }
        let agg = agg.ok_or_else(|| {
            ParseError::Unsupported("the select list must contain a SUM aggregate".into())
        })?;
        Ok((cols, agg))
    }

    /// `( lo_x [* | - lo_y] )` after `SUM`, matched against the three SSBM
    /// aggregate expressions.
    fn sum_expr(&mut self) -> Result<AggExpr, ParseError> {
        self.expect_sym('(')?;
        let a = self.ident()?;
        let op = if self.eat_sym('*') {
            Some('*')
        } else if self.eat_sym('-') {
            Some('-')
        } else {
            None
        };
        let b = if op.is_some() { Some(self.ident()?) } else { None };
        self.expect_sym(')')?;
        match (a.as_str(), op, b.as_deref()) {
            ("lo_revenue", None, None) => Ok(AggExpr::SumRevenue),
            ("lo_extendedprice", Some('*'), Some("lo_discount")) => {
                Ok(AggExpr::SumExtendedPriceTimesDiscount)
            }
            ("lo_revenue", Some('-'), Some("lo_supplycost")) => {
                Ok(AggExpr::SumRevenueMinusSupplyCost)
            }
            _ => {
                let expr = match (op, b) {
                    (Some(o), Some(b)) => format!("SUM({a} {o} {b})"),
                    _ => format!("SUM({a})"),
                };
                Err(ParseError::Unsupported(format!(
                    "{expr} is not one of the supported SSBM aggregates"
                )))
            }
        }
    }

    fn table_list(&mut self) -> Result<Vec<Table>, ParseError> {
        let mut tables = Vec::new();
        loop {
            let name = self.ident()?;
            let t = resolve_table(&name).ok_or(ParseError::UnknownTable(name))?;
            if !tables.contains(&t) {
                tables.push(t);
            }
            if !self.eat_sym(',') {
                break;
            }
        }
        if !tables.contains(&Table::Fact) {
            return Err(ParseError::Unsupported(
                "FROM must include the lineorder fact table".into(),
            ));
        }
        Ok(tables)
    }

    fn conjuncts(&mut self, w: &mut WhereClauses) -> Result<(), ParseError> {
        loop {
            self.conjunct(w)?;
            if !self.eat_kw("AND") {
                break;
            }
        }
        Ok(())
    }

    fn conjunct(&mut self, w: &mut WhereClauses) -> Result<(), ParseError> {
        let col = self.column()?;
        if self.eat_sym('=') {
            // `col = <ident>` is a join predicate; `col = <literal>` a
            // filter.
            if matches!(self.peek(), Some(Tok::Word(_))) {
                let rhs = self.column()?;
                return join_predicate(col, rhs, w);
            }
            let v = self.value()?;
            check_type(&col, &v)?;
            return push_pred(col, Pred::Eq(v), w);
        }
        if self.eat_sym('<') {
            if self.eat_sym('=') {
                return Err(ParseError::Unsupported(format!(
                    "`{} <= ...`: only =, <, BETWEEN, and IN are supported",
                    col.name
                )));
            }
            let v = self.value()?;
            check_type(&col, &v)?;
            return push_pred(col, Pred::Lt(v), w);
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.value()?;
            self.expect_kw("AND")?;
            let hi = self.value()?;
            check_type(&col, &lo)?;
            check_type(&col, &hi)?;
            return push_pred(col, Pred::Between(lo, hi), w);
        }
        if self.eat_kw("IN") {
            self.expect_sym('(')?;
            let mut vs = Vec::new();
            loop {
                let v = self.value()?;
                check_type(&col, &v)?;
                vs.push(v);
                if !self.eat_sym(',') {
                    break;
                }
            }
            self.expect_sym(')')?;
            return push_pred(col, Pred::InSet(vs), w);
        }
        Err(ParseError::Unsupported(format!(
            "predicate on {}: only =, <, BETWEEN, and IN are supported",
            col.name
        )))
    }

    fn group_list(&mut self) -> Result<Vec<GroupColumn>, ParseError> {
        let mut out = Vec::new();
        loop {
            let col = self.column()?;
            match col.table {
                Table::Dim(dim) => out.push(GroupColumn { dim, column: col.name }),
                Table::Fact => {
                    return Err(ParseError::Unsupported(format!(
                        "GROUP BY {}: grouping by fact columns is not supported",
                        col.name
                    )))
                }
            }
            if !self.eat_sym(',') {
                break;
            }
        }
        Ok(out)
    }

    /// `ORDER BY` must repeat the `GROUP BY` list, ascending.
    fn order_list(&mut self, group_by: &[GroupColumn]) -> Result<(), ParseError> {
        let mut i = 0;
        loop {
            let col = self.column()?;
            if self.eat_kw("DESC") {
                return Err(ParseError::Unsupported(
                    "ORDER BY ... DESC is not supported (results are in ascending key order)"
                        .into(),
                ));
            }
            self.eat_kw("ASC");
            if group_by.get(i).map(|g| g.column) != Some(col.name) {
                return Err(ParseError::Unsupported(
                    "ORDER BY must repeat the GROUP BY columns in order (results are always \
                     returned in ascending group-key order)"
                        .into(),
                ));
            }
            i += 1;
            if !self.eat_sym(',') {
                break;
            }
        }
        if i != group_by.len() {
            return Err(ParseError::Unsupported(
                "ORDER BY must repeat the GROUP BY columns in order".into(),
            ));
        }
        Ok(())
    }
}

/// Accumulated WHERE-clause state, in conjunct order.
#[derive(Default)]
struct WhereClauses {
    joined: Vec<Dim>,
    dim_predicates: Vec<DimPredicate>,
    fact_predicates: Vec<FactPredicate>,
}

fn check_type(col: &ColumnRef, v: &Value) -> Result<(), ParseError> {
    let ok =
        matches!((col.dtype, v), (DataType::Int, Value::Int(_)) | (DataType::Str, Value::Str(_)));
    if ok {
        Ok(())
    } else {
        Err(ParseError::TypeMismatch(format!(
            "column {} is {:?} but literal {} is not",
            col.name,
            col.dtype,
            value_sql(v)
        )))
    }
}

fn join_predicate(a: ColumnRef, b: ColumnRef, w: &mut WhereClauses) -> Result<(), ParseError> {
    // Accept `lo_fk = key` in either direction.
    let (fact, dim) = match (a.table, b.table) {
        (Table::Fact, Table::Dim(d)) => ((a, d), b),
        (Table::Dim(d), Table::Fact) => ((b, d), a),
        _ => {
            return Err(ParseError::Unsupported(format!(
                "`{} = {}`: only star joins (fact FK = dimension key) are supported",
                a.name, b.name
            )))
        }
    };
    let ((fk, d), key) = (fact, dim);
    if fk.name != d.fact_fk_column() || key.name != d.key_column() {
        return Err(ParseError::Unsupported(format!(
            "`{} = {}` is not a star join; expected {} = {}",
            fk.name,
            key.name,
            d.fact_fk_column(),
            d.key_column()
        )));
    }
    if !w.joined.contains(&d) {
        w.joined.push(d);
    }
    Ok(())
}

fn push_pred(col: ColumnRef, pred: Pred, w: &mut WhereClauses) -> Result<(), ParseError> {
    match col.table {
        Table::Dim(dim) => w.dim_predicates.push(DimPredicate { dim, column: col.name, pred }),
        Table::Fact => {
            if col.dtype != DataType::Int {
                return Err(ParseError::Unsupported(format!(
                    "predicates on string fact column {} are not supported",
                    col.name
                )));
            }
            w.fact_predicates.push(FactPredicate { column: col.name, pred });
        }
    }
    Ok(())
}

/// Semantic analysis + lowering into the descriptor.
fn lower(
    select_cols: Vec<ColumnRef>,
    aggregate: AggExpr,
    from: Vec<Table>,
    w: WhereClauses,
    group_by: Vec<GroupColumn>,
) -> Result<SsbQuery, ParseError> {
    // The plain select columns must be exactly the GROUP BY list.
    let select_as_group: Vec<&str> = select_cols.iter().map(|c| c.name).collect();
    let group_names: Vec<&str> = group_by.iter().map(|g| g.column).collect();
    if select_as_group != group_names {
        return Err(ParseError::Unsupported(
            "the non-aggregate select columns must be exactly the GROUP BY columns, in order"
                .into(),
        ));
    }
    // Every referenced dimension must be named in FROM and star-joined.
    let mut referenced: Vec<Dim> = Vec::new();
    for p in &w.dim_predicates {
        if !referenced.contains(&p.dim) {
            referenced.push(p.dim);
        }
    }
    for g in &group_by {
        if !referenced.contains(&g.dim) {
            referenced.push(g.dim);
        }
    }
    for d in &referenced {
        if !from.contains(&Table::Dim(*d)) {
            return Err(ParseError::Syntax(format!(
                "table {} is referenced but missing from FROM",
                d.table_name()
            )));
        }
        if !w.joined.contains(d) {
            return Err(ParseError::Unsupported(format!(
                "missing star join for {}: add {} = {}",
                d.table_name(),
                d.fact_fk_column(),
                d.key_column()
            )));
        }
    }
    let q = SsbQuery {
        id: QueryId::new(ADHOC_FLIGHT, 1),
        dim_predicates: w.dim_predicates,
        fact_predicates: w.fact_predicates,
        group_by,
        aggregate,
        // Unknown for ad-hoc SQL; the planner uses catalog statistics, not
        // this reporting-only field. Canonicalization below restores the
        // paper value for paper queries.
        paper_selectivity: 0.0,
    };
    Ok(canonicalize(q))
}

/// If `q` is semantically one of the 13 paper queries, adopt the paper
/// descriptor wholesale — id, predicate order, and `paper_selectivity` —
/// so SQL-submitted paper queries plan and execute exactly like the
/// hand-built descriptors (including row-MV applicability, which is gated
/// on paper flights).
fn canonicalize(q: SsbQuery) -> SsbQuery {
    for p in all_queries() {
        if q.aggregate == p.aggregate
            && q.group_by == p.group_by
            && multiset_eq(&q.dim_predicates, &p.dim_predicates)
            && multiset_eq(&q.fact_predicates, &p.fact_predicates)
        {
            return p;
        }
    }
    q
}

/// Order-insensitive equality (predicates commute in a conjunction).
fn multiset_eq<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut used = vec![false; b.len()];
    a.iter().all(|x| {
        b.iter().enumerate().any(|(i, y)| {
            if !used[i] && x == y {
                used[i] = true;
                true
            } else {
                false
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::workload::WorkloadConfig;

    fn code_of(sql: &str) -> u16 {
        parse_query(sql).expect_err(&format!("`{sql}` should not parse")).code()
    }

    /// `parse(render_sql(q))` must restore each paper query *canonically*:
    /// same id, same predicates in the same order, same paper selectivity.
    #[test]
    fn paper_queries_round_trip_canonically() {
        for q in all_queries() {
            let sql = render_sql(&q);
            let back = parse_query(&sql).unwrap_or_else(|e| panic!("{}: {e}\n  {sql}", q.id));
            assert_eq!(back.id, q.id, "{sql}");
            assert_eq!(back.dim_predicates, q.dim_predicates, "{}", q.id);
            assert_eq!(back.fact_predicates, q.fact_predicates, "{}", q.id);
            assert_eq!(back.group_by, q.group_by, "{}", q.id);
            assert_eq!(back.aggregate, q.aggregate, "{}", q.id);
            assert_eq!(back.paper_selectivity, q.paper_selectivity, "{}", q.id);
        }
    }

    /// Generated-workload descriptors round-trip semantically; their ids
    /// become ad-hoc unless the query happens to be a paper query.
    #[test]
    fn generated_workload_round_trips_semantically() {
        for q in WorkloadConfig::with_count(64).generate() {
            let sql = render_sql(&q);
            let back = parse_query(&sql).unwrap_or_else(|e| panic!("{}: {e}\n  {sql}", q.id));
            assert_eq!(back.dim_predicates, q.dim_predicates, "{sql}");
            assert_eq!(back.fact_predicates, q.fact_predicates, "{sql}");
            assert_eq!(back.group_by, q.group_by, "{sql}");
            assert_eq!(back.aggregate, q.aggregate, "{sql}");
            assert!(back.id.flight == ADHOC_FLIGHT || (1..=4).contains(&back.id.flight), "{sql}");
        }
    }

    /// Conjunct order and join direction don't matter; keywords are
    /// case-insensitive; a trailing semicolon is fine.
    #[test]
    fn paper_query_recognized_from_free_form_sql() {
        let q = parse_query(
            "select sum(LO_EXTENDEDPRICE * LO_DISCOUNT) from LINEORDER, DATE \
             where LO_QUANTITY < 25 and D_DATEKEY = LO_ORDERDATE \
             and LO_DISCOUNT between 1 and 3 and D_YEAR = 1993;",
        )
        .unwrap();
        assert_eq!(q.id, QueryId::new(1, 1));
        assert_eq!(q.paper_selectivity, cvr_data::queries::query(1, 1).paper_selectivity);
    }

    #[test]
    fn explain_parses_to_explain_statement() {
        let sql = format!("EXPLAIN {}", render_sql(&cvr_data::queries::query(2, 1)));
        assert!(matches!(parse(&sql).unwrap(), Statement::Explain(_)));
        assert!(matches!(
            parse(&render_sql(&cvr_data::queries::query(2, 1))).unwrap(),
            Statement::Select(_)
        ));
        let sql = format!("EXPLAIN ANALYZE {}", render_sql(&cvr_data::queries::query(3, 2)));
        assert!(matches!(parse(&sql).unwrap(), Statement::ExplainAnalyze(_)));
        // ANALYZE alone is not a keyword — a table named `analyze` is not in
        // the schema, so this fails resolution rather than silently tracing.
        assert!(parse("ANALYZE SELECT SUM(lo_revenue) FROM lineorder").is_err());
    }

    #[test]
    fn admin_statements_parse_as_bare_keywords() {
        assert!(matches!(parse("SNAPSHOT").unwrap(), Statement::Snapshot));
        assert!(matches!(parse("snapshot;").unwrap(), Statement::Snapshot));
        assert!(matches!(parse("RELOAD").unwrap(), Statement::Reload));
        assert!(matches!(parse("reload ;").unwrap(), Statement::Reload));
        // Trailing tokens after an admin statement are rejected.
        assert!(parse("SNAPSHOT now").is_err());
        assert_eq!(code_of("SNAPSHOT"), 5); // not a SELECT for parse_query
    }

    #[test]
    fn unknown_column_and_table_are_distinct_errors() {
        assert_eq!(
            parse_query("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_color = 3").unwrap_err(),
            ParseError::UnknownColumn("lo_color".into())
        );
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_color = 3"), 2);
        assert_eq!(
            parse_query("SELECT SUM(lo_revenue) FROM orders").unwrap_err(),
            ParseError::UnknownTable("orders".into())
        );
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM orders"), 3);
    }

    #[test]
    fn type_mismatch_is_reported() {
        // lo_discount is an int column; c_region is a string column.
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_discount = 'x'"), 4);
        assert_eq!(
            code_of(
                "SELECT SUM(lo_revenue) FROM lineorder, customer \
                 WHERE lo_custkey = c_custkey AND c_region = 3"
            ),
            4
        );
        assert_eq!(
            code_of("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_discount BETWEEN 1 AND 'x'"),
            4
        );
    }

    #[test]
    fn unsupported_clauses_are_rejected_with_code_5() {
        // <= comparison.
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_discount <= 3"), 5);
        // Aggregate outside the three SSBM forms.
        assert_eq!(code_of("SELECT SUM(lo_quantity) FROM lineorder"), 5);
        // No aggregate at all.
        assert_eq!(code_of("SELECT d_year FROM lineorder"), 5);
        // GROUP BY a fact column.
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder GROUP BY lo_quantity"), 5);
        // Missing star join for a referenced dimension.
        assert_eq!(
            code_of("SELECT SUM(lo_revenue) FROM lineorder, customer WHERE c_region = 'ASIA'"),
            5
        );
        // ORDER BY DESC.
        assert_eq!(
            code_of(
                "SELECT d_year, SUM(lo_revenue) FROM lineorder, date \
                 WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year DESC"
            ),
            5
        );
        // ORDER BY not matching GROUP BY.
        assert_eq!(
            code_of(
                "SELECT d_year, SUM(lo_revenue) FROM lineorder, date \
                 WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_yearmonth"
            ),
            5
        );
        // Non-star join predicate.
        assert_eq!(
            code_of("SELECT SUM(lo_revenue) FROM lineorder, date WHERE lo_custkey = d_datekey"),
            5
        );
    }

    #[test]
    fn syntax_errors_are_reported_with_code_1() {
        assert_eq!(code_of("SELECT SUM(lo_revenue)"), 1); // missing FROM
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder WHERE"), 1);
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder extra"), 1);
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder WHERE d_year = 'x"), 1);
        // Dimension referenced but absent from FROM.
        assert_eq!(code_of("SELECT SUM(lo_revenue) FROM lineorder WHERE d_year = 1993"), 1);
    }

    #[test]
    fn select_list_must_mirror_group_by() {
        // Select columns not matching GROUP BY.
        assert_eq!(
            code_of(
                "SELECT d_yearmonth, SUM(lo_revenue) FROM lineorder, date \
                 WHERE lo_orderdate = d_datekey GROUP BY d_year"
            ),
            5
        );
        // Aggregate before the group columns.
        assert_eq!(
            code_of(
                "SELECT SUM(lo_revenue), d_year FROM lineorder, date \
                 WHERE lo_orderdate = d_datekey GROUP BY d_year"
            ),
            5
        );
    }

    /// String literals with embedded quotes survive the round trip.
    #[test]
    fn string_literal_escaping_round_trips() {
        let sql = "SELECT SUM(lo_revenue) FROM lineorder, customer \
                   WHERE lo_custkey = c_custkey AND c_region = 'AM''ERICA'";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.dim_predicates[0].pred, Pred::Eq(Value::str("AM'ERICA")));
        let rendered = render_sql(&q);
        assert!(rendered.contains("'AM''ERICA'"), "{rendered}");
        let back = parse_query(&rendered).unwrap();
        assert_eq!(back.dim_predicates, q.dim_predicates);
    }
}
