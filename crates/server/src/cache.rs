//! A bounded serving-layer cache: completed results plus reusable filter
//! intermediates.
//!
//! Two tiers, both keyed by canonical strings from [`cvr_plan::key`]:
//!
//! * **Results** — a finished [`RowsResponse`] (output rows *and* the
//!   [`cvr_storage::io::IoStats`] the cold execution charged), keyed by the
//!   full descriptor + plan choice + store version. A hit returns the
//!   stored response byte-for-byte; only the `cached` flag differs.
//! * **Filters** — a [`FilterCapture`] (the invisible join's surviving
//!   position list plus the filter phases' exact I/O charges), keyed by the
//!   filter-only part of the descriptor. Different aggregations over the
//!   same `WHERE` clause share one intermediate; a warm execution replays
//!   the charges and runs only phase 3.
//!
//! Memory is bounded by a byte budget covering both tiers; eviction is LRU
//! by a monotonic touch stamp across the union of entries, and an entry
//! larger than the whole budget is simply not admitted. All counters are
//! monotonic and readable without the entry lock ([`QueryCache::stats`]).
//!
//! Determinism: a hit never changes a single reply byte — the differential
//! harness pins `{cold, warm, concurrent}` executions to one serial cold
//! reference, outputs and `IoStats` alike.

use crate::session::RowsResponse;
use cvr_core::FilterCapture;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Monotonic cache counters plus the current footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result-tier hits.
    pub result_hits: u64,
    /// Result-tier misses.
    pub result_misses: u64,
    /// Filter-tier hits (warm executions).
    pub filter_hits: u64,
    /// Filter-tier misses (cold executions that captured).
    pub filter_misses: u64,
    /// Entries inserted (both tiers).
    pub inserted: u64,
    /// Entries evicted to stay within budget.
    pub evicted: u64,
    /// Current footprint in bytes (both tiers).
    pub bytes: usize,
    /// Configured byte budget.
    pub budget: usize,
}

/// One cached value with its accounted size and last-touch stamp.
struct Entry<T> {
    value: T,
    bytes: usize,
    stamp: u64,
}

/// Entry maps and the shared footprint/clock, under one lock.
#[derive(Default)]
struct Inner {
    results: HashMap<String, Entry<RowsResponse>>,
    filters: HashMap<String, Entry<Arc<FilterCapture>>>,
    bytes: usize,
    tick: u64,
}

impl Inner {
    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evict least-recently-touched entries (across both tiers) until the
    /// footprint fits `budget`. Returns how many entries were evicted.
    fn evict_to(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let oldest_result = self.results.iter().min_by_key(|(_, e)| e.stamp);
            let oldest_filter = self.filters.iter().min_by_key(|(_, e)| e.stamp);
            let victim = match (oldest_result, oldest_filter) {
                (Some((k, r)), Some((fk, f))) => {
                    if r.stamp <= f.stamp {
                        (true, k.clone())
                    } else {
                        (false, fk.clone())
                    }
                }
                (Some((k, _)), None) => (true, k.clone()),
                (None, Some((fk, _))) => (false, fk.clone()),
                (None, None) => break,
            };
            let freed = if victim.0 {
                self.results.remove(&victim.1).map(|e| e.bytes)
            } else {
                self.filters.remove(&victim.1).map(|e| e.bytes)
            };
            self.bytes = self.bytes.saturating_sub(freed.unwrap_or(0));
            evicted += 1;
        }
        evicted
    }
}

/// The serving-layer cache; see the module docs.
pub struct QueryCache {
    inner: Mutex<Inner>,
    budget: usize,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    filter_hits: AtomicU64,
    filter_misses: AtomicU64,
    inserted: AtomicU64,
    evicted: AtomicU64,
}

impl QueryCache {
    /// A cache bounded to `budget` bytes across both tiers.
    pub fn new(budget: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            budget,
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
            filter_hits: AtomicU64::new(0),
            filter_misses: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // The maps are valid at every point (no invariant spans a panic),
        // so a poisoned lock is recoverable.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a completed result; counts a hit or miss and refreshes the
    /// entry's LRU stamp. The returned response has `cached == false` — the
    /// caller flips it for the wire.
    pub fn get_result(&self, key: &str) -> Option<RowsResponse> {
        let mut inner = self.lock();
        let stamp = inner.next_stamp();
        match inner.results.get_mut(key) {
            Some(e) => {
                e.stamp = stamp;
                self.result_hits.fetch_add(1, Ordering::Relaxed);
                cvr_obs::counter("cvr_cache_hits_total{tier=\"result\"}", "Cache hits").inc();
                Some(e.value.clone())
            }
            None => {
                self.result_misses.fetch_add(1, Ordering::Relaxed);
                cvr_obs::counter("cvr_cache_misses_total{tier=\"result\"}", "Cache misses").inc();
                None
            }
        }
    }

    /// Store a completed result under `key`.
    pub fn put_result(&self, key: String, value: &RowsResponse) {
        let bytes = result_bytes(value);
        self.put(
            |inner, stamp| {
                let mut value = value.clone();
                value.cached = false;
                inner.bytes += bytes;
                inner.results.insert(key, Entry { value, bytes, stamp });
            },
            bytes,
        );
    }

    /// Look up a filter intermediate; counts a hit or miss and refreshes
    /// the entry's LRU stamp.
    pub fn get_filter(&self, key: &str) -> Option<Arc<FilterCapture>> {
        let mut inner = self.lock();
        let stamp = inner.next_stamp();
        match inner.filters.get_mut(key) {
            Some(e) => {
                e.stamp = stamp;
                self.filter_hits.fetch_add(1, Ordering::Relaxed);
                cvr_obs::counter("cvr_cache_hits_total{tier=\"filter\"}", "Cache hits").inc();
                Some(e.value.clone())
            }
            None => {
                self.filter_misses.fetch_add(1, Ordering::Relaxed);
                cvr_obs::counter("cvr_cache_misses_total{tier=\"filter\"}", "Cache misses").inc();
                None
            }
        }
    }

    /// Store a filter intermediate under `key`.
    pub fn put_filter(&self, key: String, value: Arc<FilterCapture>) {
        let bytes = value.approx_bytes();
        self.put(
            |inner, stamp| {
                inner.bytes += bytes;
                inner.filters.insert(key, Entry { value, bytes, stamp });
            },
            bytes,
        );
    }

    /// Presence check without touching counters or LRU stamps (`EXPLAIN`).
    pub fn peek(&self, result_key: &str, filter_key: &str) -> (bool, bool) {
        let inner = self.lock();
        (inner.results.contains_key(result_key), inner.filters.contains_key(filter_key))
    }

    fn put(&self, insert: impl FnOnce(&mut Inner, u64), bytes: usize) {
        if bytes > self.budget {
            return; // would evict the entire cache and still not fit
        }
        let mut inner = self.lock();
        let stamp = inner.next_stamp();
        insert(&mut inner, stamp);
        self.inserted.fetch_add(1, Ordering::Relaxed);
        cvr_obs::counter("cvr_cache_inserted_total", "Cache entries inserted").inc();
        let evicted = inner.evict_to(self.budget);
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
            cvr_obs::counter("cvr_cache_evicted_total", "Cache entries evicted").add(evicted);
        }
    }

    /// Counter snapshot plus current footprint.
    pub fn stats(&self) -> CacheStats {
        let bytes = self.lock().bytes;
        CacheStats {
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            filter_hits: self.filter_hits.load(Ordering::Relaxed),
            filter_misses: self.filter_misses.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes,
            budget: self.budget,
        }
    }
}

/// Accounted size of a cached result: the encoded output plus column
/// metadata and map overhead.
fn result_bytes(r: &RowsResponse) -> usize {
    let cols: usize = r.columns.iter().map(|c| c.name.len() + 16).sum();
    r.output.to_bytes().len() + cols + 160
}
