//! cvr-server: the front door — SQL, sessions, and a concurrent server.
//!
//! The crates below this one expose descriptors, engines, and a planner;
//! this crate puts one door in front of them:
//!
//! * [`parser`] — a small SQL frontend over the SSB star schema. It lowers
//!   `SELECT`/`WHERE`/`GROUP BY`/`ORDER BY` text to [`SsbQuery`]
//!   descriptors and recognizes the 13 paper queries, so SQL enters the
//!   planner on exactly the same footing as hand-built descriptors.
//! * [`session`] — [`Session`], the unified API: one object owning
//!   statistics, planning, and both engines, answering `query(&str)`.
//! * [`cache`] — the bounded result/filter-intermediate cache behind
//!   `Session`; hits are byte-identical to cold executions (outputs *and*
//!   `IoStats`) and marked by the wire protocol's `cached` flag.
//! * [`protocol`] — a length-prefixed binary wire format with typed
//!   result sets, structured errors, `EXPLAIN` payloads, out-of-band
//!   cancellation, a `STATS` introspection frame (scheduler, cache, and
//!   the `cvr-obs` metrics registry), and an opt-in `TRACE` frame
//!   carrying the statement's operator span tree.
//! * `analyze` (internal) — `EXPLAIN ANALYZE`: executes, then zips the
//!   planner's estimate tree with the measured [`cvr_core::SpanRecord`]
//!   tree.
//! * [`server`] / [`client`] — a threaded TCP accept loop (per-statement
//!   [`cvr_core::QueryCtx`] lifecycles, cancel registry, socket timeouts,
//!   drain-on-shutdown) and the matching blocking client, plus
//!   [`RetryClient`] with capped exponential backoff over exactly the
//!   failures the server marks retryable.
//!
//! The load-bearing invariant, inherited from the engines and preserved
//! here: a query's output bytes and [`IoStats`] are identical whether it
//! arrives as SQL or as a descriptor, serially or over any number of
//! concurrent connections.
//!
//! [`SsbQuery`]: cvr_data::queries::SsbQuery
//! [`IoStats`]: cvr_storage::io::IoStats

#![warn(missing_docs)]

mod analyze;
pub mod cache;
pub mod client;
pub mod parser;
pub mod protocol;
pub mod server;
pub mod session;

pub use cache::{CacheStats, QueryCache};
pub use client::{Client, ClientConfig, ClientError, RetryClient};
pub use parser::{parse, parse_query, render_sql, ParseError, Statement};
pub use protocol::{Request, Response, ResultSet, StatsReport, FLAG_TRACE};
pub use server::{serve, CancelRegistry, Server};
pub use session::{ColumnMeta, QueryResponse, RowsResponse, Session, SessionError};
