//! The wire protocol: length-prefixed binary frames.
//!
//! Every message is one frame: a `u32` little-endian payload length,
//! then the payload. The first payload byte is a tag:
//!
//! ```text
//! requests            responses
//! 0x01 QUERY          0x81 RESULT
//! 0x02 CLOSE          0x82 ERROR
//!                     0x83 EXPLAIN
//! ```
//!
//! * `QUERY`: `u32` length + UTF-8 SQL.
//! * `CLOSE`: tag only; the server hangs up after reading it.
//! * `RESULT`: query id (`u8` flight, `u8` number), plan label
//!   (`u16` length + UTF-8), a `cached` flag (`u8`, 1 when served from the
//!   session's result cache — the only byte a cache hit may change),
//!   [`IoStats`] (`u64` bytes, pages, seeks, pool hits),
//!   column metadata (`u16` count, each `u16` length + UTF-8 name +
//!   `u8` type tag, 0 = int / 1 = str), then the result rows: `u32`
//!   length + `QueryOutput::to_bytes`, shipped verbatim — the bytes the
//!   differential harness compares are the bytes on the wire.
//! * `ERROR`: `u16` [`ParseError::code`]-compatible code, `u32` length +
//!   UTF-8 message.
//! * `EXPLAIN`: two `u32`-length-prefixed UTF-8 strings — the rendered
//!   tree and the stable-field JSON (`Plan::to_json`).
//!
//! All integers are little-endian. Hand-rolled on purpose: the build
//! environment has no serde, and the format doubles as documentation of
//! exactly what a result *is*.
//!
//! [`ParseError::code`]: crate::parser::ParseError::code

use crate::session::{ColumnMeta, QueryResponse, RowsResponse};
use cvr_data::queries::QueryId;
use cvr_data::result::QueryOutput;
use cvr_data::value::DataType;
use cvr_storage::io::IoStats;
use std::io::{Read, Write};

/// Frames larger than this are rejected as malformed (64 MB).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one SQL statement.
    Query(String),
    /// Orderly hang-up.
    Close,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A result set.
    Result(ResultSet),
    /// The statement failed.
    Error {
        /// Stable error-category code (see `ParseError::code`).
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// An `EXPLAIN` payload: the plan, never executed.
    Explain {
        /// Rendered tree, identical to the CLI binaries' output.
        text: String,
        /// Stable-field JSON (`Plan::to_json`).
        json: String,
    },
}

/// A result set as shipped on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Executed query id.
    pub query_id: QueryId,
    /// The planner's chosen plan label.
    pub plan: String,
    /// Whether this result came from the session's result cache. By the
    /// determinism contract it is the only field that may differ between a
    /// cold execution and a hit (see [`Response::normalized`]).
    pub cached: bool,
    /// I/O accounting of the execution.
    pub io: IoStats,
    /// Column metadata: group columns, then the aggregate.
    pub columns: Vec<ColumnMeta>,
    /// `QueryOutput::to_bytes`, verbatim.
    pub output_bytes: Vec<u8>,
}

impl ResultSet {
    /// Decode the row payload.
    pub fn output(&self) -> Result<QueryOutput, String> {
        QueryOutput::from_bytes(&self.output_bytes)
    }
}

/// Build the `RESULT` response for an executed query.
pub fn result_response(r: &RowsResponse) -> Response {
    Response::Result(ResultSet {
        query_id: r.query_id,
        plan: r.plan.clone(),
        cached: r.cached,
        io: r.io,
        columns: r.columns.clone(),
        output_bytes: r.output.to_bytes(),
    })
}

/// Build the wire response for any session answer.
pub fn response_for(answer: &QueryResponse) -> Response {
    match answer {
        QueryResponse::Rows(r) => result_response(r),
        QueryResponse::Explain { text, json } => {
            Response::Explain { text: text.clone(), json: json.clone() }
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: `u32` LE length + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const TAG_QUERY: u8 = 0x01;
const TAG_CLOSE: u8 = 0x02;
const TAG_RESULT: u8 = 0x81;
const TAG_ERROR: u8 = 0x82;
const TAG_EXPLAIN: u8 = 0x83;

fn put_str16(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query(sql) => {
                out.push(TAG_QUERY);
                put_str32(&mut out, sql);
            }
            Request::Close => out.push(TAG_CLOSE),
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Request, String> {
        let mut r = Cursor { bytes, at: 0 };
        let req = match r.u8()? {
            TAG_QUERY => Request::Query(r.str32()?),
            TAG_CLOSE => Request::Close,
            t => return Err(format!("unknown request tag 0x{t:02x}")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// This response with the `cached` flag cleared — the form the
    /// differential harnesses compare, since a hit must match its cold
    /// reference in every *other* byte.
    pub fn normalized(&self) -> Response {
        match self {
            Response::Result(rs) => {
                let mut rs = rs.clone();
                rs.cached = false;
                Response::Result(rs)
            }
            other => other.clone(),
        }
    }

    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Result(rs) => {
                out.push(TAG_RESULT);
                out.push(rs.query_id.flight);
                out.push(rs.query_id.number);
                put_str16(&mut out, &rs.plan);
                out.push(rs.cached as u8);
                out.extend_from_slice(&rs.io.bytes_read.to_le_bytes());
                out.extend_from_slice(&rs.io.pages_read.to_le_bytes());
                out.extend_from_slice(&rs.io.seeks.to_le_bytes());
                out.extend_from_slice(&rs.io.pool_hits.to_le_bytes());
                out.extend_from_slice(&(rs.columns.len() as u16).to_le_bytes());
                for c in &rs.columns {
                    put_str16(&mut out, &c.name);
                    out.push(match c.dtype {
                        DataType::Int => 0,
                        DataType::Str => 1,
                    });
                }
                out.extend_from_slice(&(rs.output_bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&rs.output_bytes);
            }
            Response::Error { code, message } => {
                out.push(TAG_ERROR);
                out.extend_from_slice(&code.to_le_bytes());
                put_str32(&mut out, message);
            }
            Response::Explain { text, json } => {
                out.push(TAG_EXPLAIN);
                put_str32(&mut out, text);
                put_str32(&mut out, json);
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Response, String> {
        let mut r = Cursor { bytes, at: 0 };
        let resp = match r.u8()? {
            TAG_RESULT => {
                let query_id = QueryId::new(r.u8()?, r.u8()?);
                let plan = r.str16()?;
                let cached = match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(format!("invalid cached flag {t}")),
                };
                let io = IoStats {
                    bytes_read: r.u64()?,
                    pages_read: r.u64()?,
                    seeks: r.u64()?,
                    pool_hits: r.u64()?,
                };
                let ncols = r.u16()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1 << 10));
                for _ in 0..ncols {
                    let name = r.str16()?;
                    let dtype = match r.u8()? {
                        0 => DataType::Int,
                        1 => DataType::Str,
                        t => return Err(format!("unknown column type tag {t}")),
                    };
                    columns.push(ColumnMeta { name, dtype });
                }
                let n = r.u32()? as usize;
                let output_bytes = r.take(n)?.to_vec();
                Response::Result(ResultSet { query_id, plan, cached, io, columns, output_bytes })
            }
            TAG_ERROR => Response::Error { code: r.u16()?, message: r.str32()? },
            TAG_EXPLAIN => Response::Explain { text: r.str32()?, json: r.str32()? },
            t => return Err(format!("unknown response tag 0x{t:02x}")),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Bounds-checked little-endian cursor.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated payload at byte {}", self.at))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, String> {
        let n = self.u16()? as usize;
        self.utf8(n)
    }

    fn str32(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        self.utf8(n)
    }

    fn utf8(&mut self, n: usize) -> Result<String, String> {
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|e| format!("invalid UTF-8: {e}"))
    }

    fn finish(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in payload", self.bytes.len() - self.at))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::value::Value;

    fn sample_result() -> Response {
        let output = QueryOutput::new(vec![
            (vec![Value::Int(1993), Value::str("MFGR#12")], 42_000_000),
            (vec![Value::Int(1994), Value::str("MFGR#13")], -7),
        ]);
        Response::Result(ResultSet {
            query_id: QueryId::new(2, 1),
            plan: "tICL".to_string(),
            cached: true,
            io: IoStats { bytes_read: 1024, pages_read: 16, seeks: 3, pool_hits: 9 },
            columns: vec![
                ColumnMeta { name: "d_year".into(), dtype: DataType::Int },
                ColumnMeta { name: "p_brand1".into(), dtype: DataType::Str },
                ColumnMeta { name: "SUM(lo_revenue)".into(), dtype: DataType::Int },
            ],
            output_bytes: output.to_bytes(),
        })
    }

    #[test]
    fn requests_round_trip() {
        for req in [Request::Query("SELECT SUM(lo_revenue) FROM lineorder".into()), Request::Close]
        {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            sample_result(),
            Response::Error { code: 2, message: "unknown column: lo_color".into() },
            Response::Explain { text: "plan=tICL".into(), json: "{\"plan\": \"tICL\"}".into() },
        ];
        for resp in responses {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn result_payload_decodes_rows() {
        let Response::Result(rs) = sample_result() else { unreachable!() };
        let round = Response::decode(&rs.encode_as_response()).unwrap();
        let Response::Result(back) = round else { panic!("expected RESULT") };
        let rows = back.output().unwrap();
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0].1, 42_000_000);
        assert_eq!(back.io.pool_hits, 9);
        assert!(back.cached, "cached flag survives the round trip");
    }

    #[test]
    fn normalized_clears_only_the_cached_flag() {
        let hit = sample_result();
        let normalized = hit.normalized();
        assert_ne!(hit, normalized);
        let Response::Result(n) = &normalized else { panic!("expected RESULT") };
        assert!(!n.cached);
        // Identical everywhere else: re-set the flag and compare.
        let mut back = n.clone();
        back.cached = true;
        assert_eq!(Response::Result(back), hit);
        // Already-cold responses and non-results are unchanged.
        assert_eq!(normalized.normalized(), normalized);
        let err = Response::Error { code: 1, message: "x".into() };
        assert_eq!(err.normalized(), err);
        // A corrupt flag byte is rejected, not misread.
        let mut bytes = hit.encode();
        let flag_at = 1 + 2 + 2 + "tICL".len(); // tag, id, str16 len, label
        assert_eq!(bytes[flag_at], 1);
        bytes[flag_at] = 7;
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[0x7f]).is_err(), "unknown request tag");
        assert!(Response::decode(&[0x7f]).is_err(), "unknown response tag");
        assert!(Request::decode(&[]).is_err(), "empty payload");
        // Trailing garbage after a well-formed message.
        let mut bytes = Request::Close.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err(), "trailing bytes");
        // Truncated string length.
        let mut q = Request::Query("SELECT".into()).encode();
        q.truncate(q.len() - 2);
        assert!(Request::decode(&q).is_err(), "truncated payload");
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at a frame boundary");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let wire = (u32::MAX).to_le_bytes();
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    impl ResultSet {
        fn encode_as_response(self) -> Vec<u8> {
            Response::Result(self).encode()
        }
    }
}
