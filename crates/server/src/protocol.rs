//! The wire protocol: length-prefixed binary frames.
//!
//! Every message is one frame: a `u32` little-endian payload length,
//! then the payload. The first payload byte is a tag:
//!
//! ```text
//! requests            responses
//! 0x01 QUERY          0x81 RESULT
//! 0x02 CLOSE          0x82 ERROR
//! 0x03 QUERY_OPTS     0x83 EXPLAIN
//! 0x04 CANCEL         0x84 CANCEL_ACK
//! 0x05 STATS          0x85 STATS
//!                     0x86 TRACE
//!                     0x87 SNAPSHOT
//! ```
//!
//! * `QUERY`: `u32` length + UTF-8 SQL.
//! * `CLOSE`: tag only; the server hangs up after reading it.
//! * `QUERY_OPTS`: `u64` cancel token (0 = not cancellable), `u32`
//!   deadline in milliseconds (0 = none), `u8` flags ([`FLAG_TRACE`]
//!   requests a `TRACE` frame after the response), then `u32` length +
//!   UTF-8 SQL. While the statement runs, a *second* connection may send
//!   `CANCEL` with the same token to abort it (the Postgres out-of-band
//!   shape).
//! * `CANCEL`: `u64` token. Answered with `CANCEL_ACK` (`u8` flag: 1 if a
//!   query holding that token was found and signalled).
//! * `STATS`: tag only; answered with a `STATS` response carrying the
//!   scheduler counters, the result-cache counters when the session keeps
//!   one, and the process metrics registry's samples (see
//!   [`StatsReport`]).
//! * `RESULT`: query id (`u8` flight, `u8` number), plan label
//!   (`u16` length + UTF-8), a `cached` flag (`u8`, 1 when served from the
//!   session's result cache — the only byte a cache hit may change),
//!   [`IoStats`] (`u64` bytes, pages, seeks, pool hits),
//!   column metadata (`u16` count, each `u16` length + UTF-8 name +
//!   `u8` type tag, 0 = int / 1 = str), then the result rows: `u32`
//!   length + `QueryOutput::to_bytes`, shipped verbatim — the bytes the
//!   differential harness compares are the bytes on the wire.
//! * `ERROR`: `u16` [`ParseError::code`]-compatible code, `u32` length +
//!   UTF-8 message.
//! * `EXPLAIN`: two `u32`-length-prefixed UTF-8 strings — the rendered
//!   tree and the stable-field JSON (`Plan::to_json`; for
//!   `EXPLAIN ANALYZE`, the same fields plus per-node `"actual"` objects
//!   and a top-level `"trace"`).
//! * `TRACE`: two `u32`-length-prefixed UTF-8 strings — the rendered span
//!   tree and its JSON. Sent *after* the `RESULT`/`ERROR` frame of a
//!   `QUERY_OPTS` request that set [`FLAG_TRACE`] — the response frame
//!   itself stays byte-identical to an untraced run. Both strings are
//!   empty when the statement recorded no spans (e.g. a parse error).
//! * `SNAPSHOT`: answer to a `SNAPSHOT` or `RELOAD` statement — `u64`
//!   manifest generation, `u64` store version after the statement, `u32`
//!   segment count, `u64` total bytes. A failed snapshot or reload (no
//!   data directory, I/O failure, or an unrecoverable corrupt store, code
//!   105) arrives as an `ERROR` frame like any other statement failure.
//!
//! All integers are little-endian. Hand-rolled on purpose: the build
//! environment has no serde, and the format doubles as documentation of
//! exactly what a result *is*.
//!
//! [`ParseError::code`]: crate::parser::ParseError::code

use crate::cache::CacheStats;
use crate::session::{ColumnMeta, QueryResponse, RowsResponse, SnapshotInfo};
use cvr_core::SchedStats;
use cvr_data::queries::QueryId;
use cvr_data::result::QueryOutput;
use cvr_data::value::DataType;
use cvr_storage::io::IoStats;
use std::io::{Read, Write};
use std::sync::OnceLock;

/// Default frame-size cap when `CVR_MAX_FRAME` is unset (16 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 << 20;

/// Frames larger than this are rejected as malformed before any payload
/// allocation. `CVR_MAX_FRAME` (bytes, read once) overrides the 16 MiB
/// default; malformed or zero values fall back to it.
pub fn max_frame_bytes() -> usize {
    static LIMIT: OnceLock<usize> = OnceLock::new();
    *LIMIT.get_or_init(|| frame_limit_from(std::env::var("CVR_MAX_FRAME").ok().as_deref()))
}

fn frame_limit_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_MAX_FRAME_BYTES)
}

/// `Request::QueryOpts` flag bit: ship a `TRACE` frame (the execution's
/// span tree) after the response frame.
pub const FLAG_TRACE: u8 = 0x01;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one SQL statement.
    Query(String),
    /// Orderly hang-up.
    Close,
    /// Execute one SQL statement with lifecycle options.
    QueryOpts {
        /// Cancel token; `0` means the statement is not cancellable.
        token: u64,
        /// Deadline in milliseconds from receipt; `0` means none.
        deadline_ms: u32,
        /// Option bits; see [`FLAG_TRACE`].
        flags: u8,
        /// The statement.
        sql: String,
    },
    /// Cancel the in-flight statement registered under this token.
    Cancel(u64),
    /// Ask for scheduler and cache counters.
    Stats,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A result set.
    Result(ResultSet),
    /// The statement failed.
    Error {
        /// Stable error-category code (see `ParseError::code`).
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// An `EXPLAIN` payload: the plan, never executed.
    Explain {
        /// Rendered tree, identical to the CLI binaries' output.
        text: String,
        /// Stable-field JSON (`Plan::to_json`).
        json: String,
    },
    /// Answer to [`Request::Cancel`].
    CancelAck {
        /// Whether a query registered under the token was found.
        found: bool,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// The execution trace of the preceding response's statement
    /// (requested via [`FLAG_TRACE`]).
    Trace {
        /// Rendered span tree (`SpanRecord::render`); empty when the
        /// statement recorded no spans.
        text: String,
        /// Span-tree JSON (`SpanRecord::to_json`); empty likewise.
        json: String,
    },
    /// Answer to a `SNAPSHOT` or `RELOAD` statement.
    Snapshot(SnapshotInfo),
}

/// The counters shipped in a `STATS` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Scheduler counters and gauges.
    pub sched: SchedStats,
    /// Result-cache counters; `None` when the session runs cache-disabled.
    pub cache: Option<CacheStats>,
    /// The process metrics registry's `(name, value)` samples — every
    /// counter and gauge, plus `_count`/`_sum`/`_p50`/`_p99` per
    /// histogram (sorted by name; see `cvr_obs::Registry::samples`).
    pub metrics: Vec<(String, u64)>,
}

/// A result set as shipped on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Executed query id.
    pub query_id: QueryId,
    /// The planner's chosen plan label.
    pub plan: String,
    /// Whether this result came from the session's result cache. By the
    /// determinism contract it is the only field that may differ between a
    /// cold execution and a hit (see [`Response::normalized`]).
    pub cached: bool,
    /// I/O accounting of the execution.
    pub io: IoStats,
    /// Column metadata: group columns, then the aggregate.
    pub columns: Vec<ColumnMeta>,
    /// `QueryOutput::to_bytes`, verbatim.
    pub output_bytes: Vec<u8>,
}

impl ResultSet {
    /// Decode the row payload.
    pub fn output(&self) -> Result<QueryOutput, String> {
        QueryOutput::from_bytes(&self.output_bytes)
    }
}

/// Build the `RESULT` response for an executed query.
pub fn result_response(r: &RowsResponse) -> Response {
    Response::Result(ResultSet {
        query_id: r.query_id,
        plan: r.plan.clone(),
        cached: r.cached,
        io: r.io,
        columns: r.columns.clone(),
        output_bytes: r.output.to_bytes(),
    })
}

/// Build the wire response for any session answer.
pub fn response_for(answer: &QueryResponse) -> Response {
    match answer {
        QueryResponse::Rows(r) => result_response(r),
        QueryResponse::Explain { text, json } => {
            Response::Explain { text: text.clone(), json: json.clone() }
        }
        QueryResponse::Snapshot(info) => Response::Snapshot(*info),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: `u32` LE length + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    let limit = max_frame_bytes();
    if len > limit {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {limit}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const TAG_QUERY: u8 = 0x01;
const TAG_CLOSE: u8 = 0x02;
const TAG_QUERY_OPTS: u8 = 0x03;
const TAG_CANCEL: u8 = 0x04;
const TAG_STATS_REQ: u8 = 0x05;
const TAG_RESULT: u8 = 0x81;
const TAG_ERROR: u8 = 0x82;
const TAG_EXPLAIN: u8 = 0x83;
const TAG_CANCEL_ACK: u8 = 0x84;
const TAG_STATS: u8 = 0x85;
const TAG_TRACE: u8 = 0x86;
const TAG_SNAPSHOT: u8 = 0x87;

fn put_str16(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query(sql) => {
                out.push(TAG_QUERY);
                put_str32(&mut out, sql);
            }
            Request::Close => out.push(TAG_CLOSE),
            Request::QueryOpts { token, deadline_ms, flags, sql } => {
                out.push(TAG_QUERY_OPTS);
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                out.push(*flags);
                put_str32(&mut out, sql);
            }
            Request::Cancel(token) => {
                out.push(TAG_CANCEL);
                out.extend_from_slice(&token.to_le_bytes());
            }
            Request::Stats => out.push(TAG_STATS_REQ),
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Request, String> {
        let mut r = Cursor { bytes, at: 0 };
        let req = match r.u8()? {
            TAG_QUERY => Request::Query(r.str32()?),
            TAG_CLOSE => Request::Close,
            TAG_QUERY_OPTS => Request::QueryOpts {
                token: r.u64()?,
                deadline_ms: r.u32()?,
                flags: r.u8()?,
                sql: r.str32()?,
            },
            TAG_CANCEL => Request::Cancel(r.u64()?),
            TAG_STATS_REQ => Request::Stats,
            t => return Err(format!("unknown request tag 0x{t:02x}")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// This response with the `cached` flag cleared — the form the
    /// differential harnesses compare, since a hit must match its cold
    /// reference in every *other* byte.
    pub fn normalized(&self) -> Response {
        match self {
            Response::Result(rs) => {
                let mut rs = rs.clone();
                rs.cached = false;
                Response::Result(rs)
            }
            other => other.clone(),
        }
    }

    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Result(rs) => {
                out.push(TAG_RESULT);
                out.push(rs.query_id.flight);
                out.push(rs.query_id.number);
                put_str16(&mut out, &rs.plan);
                out.push(rs.cached as u8);
                out.extend_from_slice(&rs.io.bytes_read.to_le_bytes());
                out.extend_from_slice(&rs.io.pages_read.to_le_bytes());
                out.extend_from_slice(&rs.io.seeks.to_le_bytes());
                out.extend_from_slice(&rs.io.pool_hits.to_le_bytes());
                out.extend_from_slice(&(rs.columns.len() as u16).to_le_bytes());
                for c in &rs.columns {
                    put_str16(&mut out, &c.name);
                    out.push(match c.dtype {
                        DataType::Int => 0,
                        DataType::Str => 1,
                    });
                }
                out.extend_from_slice(&(rs.output_bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&rs.output_bytes);
            }
            Response::Error { code, message } => {
                out.push(TAG_ERROR);
                out.extend_from_slice(&code.to_le_bytes());
                put_str32(&mut out, message);
            }
            Response::Explain { text, json } => {
                out.push(TAG_EXPLAIN);
                put_str32(&mut out, text);
                put_str32(&mut out, json);
            }
            Response::CancelAck { found } => {
                out.push(TAG_CANCEL_ACK);
                out.push(*found as u8);
            }
            Response::Stats(report) => {
                out.push(TAG_STATS);
                let s = &report.sched;
                for v in [
                    s.admitted,
                    s.queued,
                    s.shed,
                    s.abandoned,
                    s.leases,
                    s.throttled,
                    s.active,
                    s.queue_depth,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                match &report.cache {
                    None => out.push(0),
                    Some(c) => {
                        out.push(1);
                        for v in [
                            c.result_hits,
                            c.result_misses,
                            c.filter_hits,
                            c.filter_misses,
                            c.inserted,
                            c.evicted,
                            c.bytes as u64,
                            c.budget as u64,
                        ] {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                out.extend_from_slice(&(report.metrics.len() as u32).to_le_bytes());
                for (name, value) in &report.metrics {
                    put_str16(&mut out, name);
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
            Response::Trace { text, json } => {
                out.push(TAG_TRACE);
                put_str32(&mut out, text);
                put_str32(&mut out, json);
            }
            Response::Snapshot(info) => {
                out.push(TAG_SNAPSHOT);
                out.extend_from_slice(&info.generation.to_le_bytes());
                out.extend_from_slice(&info.store_version.to_le_bytes());
                out.extend_from_slice(&info.segments.to_le_bytes());
                out.extend_from_slice(&info.bytes.to_le_bytes());
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Response, String> {
        let mut r = Cursor { bytes, at: 0 };
        let resp = match r.u8()? {
            TAG_RESULT => {
                let query_id = QueryId::new(r.u8()?, r.u8()?);
                let plan = r.str16()?;
                let cached = match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(format!("invalid cached flag {t}")),
                };
                let io = IoStats {
                    bytes_read: r.u64()?,
                    pages_read: r.u64()?,
                    seeks: r.u64()?,
                    pool_hits: r.u64()?,
                };
                let ncols = r.u16()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1 << 10));
                for _ in 0..ncols {
                    let name = r.str16()?;
                    let dtype = match r.u8()? {
                        0 => DataType::Int,
                        1 => DataType::Str,
                        t => return Err(format!("unknown column type tag {t}")),
                    };
                    columns.push(ColumnMeta { name, dtype });
                }
                let n = r.u32()? as usize;
                let output_bytes = r.take(n)?.to_vec();
                Response::Result(ResultSet { query_id, plan, cached, io, columns, output_bytes })
            }
            TAG_ERROR => Response::Error { code: r.u16()?, message: r.str32()? },
            TAG_EXPLAIN => Response::Explain { text: r.str32()?, json: r.str32()? },
            TAG_CANCEL_ACK => Response::CancelAck {
                found: match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(format!("invalid cancel-ack flag {t}")),
                },
            },
            TAG_STATS => {
                let sched = SchedStats {
                    admitted: r.u64()?,
                    queued: r.u64()?,
                    shed: r.u64()?,
                    abandoned: r.u64()?,
                    leases: r.u64()?,
                    throttled: r.u64()?,
                    active: r.u64()?,
                    queue_depth: r.u64()?,
                };
                let cache = match r.u8()? {
                    0 => None,
                    1 => Some(CacheStats {
                        result_hits: r.u64()?,
                        result_misses: r.u64()?,
                        filter_hits: r.u64()?,
                        filter_misses: r.u64()?,
                        inserted: r.u64()?,
                        evicted: r.u64()?,
                        bytes: r.u64()? as usize,
                        budget: r.u64()? as usize,
                    }),
                    t => return Err(format!("invalid cache-stats flag {t}")),
                };
                let n = r.u32()? as usize;
                let mut metrics = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let name = r.str16()?;
                    metrics.push((name, r.u64()?));
                }
                Response::Stats(StatsReport { sched, cache, metrics })
            }
            TAG_TRACE => Response::Trace { text: r.str32()?, json: r.str32()? },
            TAG_SNAPSHOT => Response::Snapshot(SnapshotInfo {
                generation: r.u64()?,
                store_version: r.u64()?,
                segments: r.u32()?,
                bytes: r.u64()?,
            }),
            t => return Err(format!("unknown response tag 0x{t:02x}")),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Bounds-checked little-endian cursor.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated payload at byte {}", self.at))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, String> {
        let n = self.u16()? as usize;
        self.utf8(n)
    }

    fn str32(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        self.utf8(n)
    }

    fn utf8(&mut self, n: usize) -> Result<String, String> {
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|e| format!("invalid UTF-8: {e}"))
    }

    fn finish(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in payload", self.bytes.len() - self.at))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::value::Value;

    fn sample_result() -> Response {
        let output = QueryOutput::new(vec![
            (vec![Value::Int(1993), Value::str("MFGR#12")], 42_000_000),
            (vec![Value::Int(1994), Value::str("MFGR#13")], -7),
        ]);
        Response::Result(ResultSet {
            query_id: QueryId::new(2, 1),
            plan: "tICL".to_string(),
            cached: true,
            io: IoStats { bytes_read: 1024, pages_read: 16, seeks: 3, pool_hits: 9 },
            columns: vec![
                ColumnMeta { name: "d_year".into(), dtype: DataType::Int },
                ColumnMeta { name: "p_brand1".into(), dtype: DataType::Str },
                ColumnMeta { name: "SUM(lo_revenue)".into(), dtype: DataType::Int },
            ],
            output_bytes: output.to_bytes(),
        })
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query("SELECT SUM(lo_revenue) FROM lineorder".into()),
            Request::Close,
            Request::QueryOpts {
                token: 0xDEAD_BEEF,
                deadline_ms: 250,
                flags: FLAG_TRACE,
                sql: "SELECT 1".into(),
            },
            Request::QueryOpts {
                token: 0,
                deadline_ms: 0,
                flags: 0,
                sql: "EXPLAIN SELECT 1".into(),
            },
            Request::Cancel(42),
            Request::Stats,
        ] {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn responses_round_trip() {
        let sched = SchedStats {
            admitted: 10,
            queued: 3,
            shed: 2,
            abandoned: 1,
            leases: 12,
            throttled: 4,
            active: 1,
            queue_depth: 0,
        };
        let cache = CacheStats {
            result_hits: 7,
            result_misses: 9,
            filter_hits: 5,
            filter_misses: 6,
            inserted: 9,
            evicted: 2,
            bytes: 4096,
            budget: 1 << 20,
        };
        let metrics =
            vec![("cvr_queries_total".to_string(), 17u64), ("cvr_sched_shed_total".to_string(), 2)];
        let responses = [
            sample_result(),
            Response::Error { code: 2, message: "unknown column: lo_color".into() },
            Response::Explain { text: "plan=tICL".into(), json: "{\"plan\": \"tICL\"}".into() },
            Response::CancelAck { found: true },
            Response::CancelAck { found: false },
            Response::Stats(StatsReport { sched, cache: Some(cache), metrics: metrics.clone() }),
            Response::Stats(StatsReport { sched, cache: None, metrics: Vec::new() }),
            Response::Trace { text: "column-plan: tICL [rows=7]".into(), json: "{}".into() },
            Response::Trace { text: String::new(), json: String::new() },
            Response::Snapshot(SnapshotInfo {
                generation: 3,
                store_version: 3,
                segments: 58,
                bytes: 1 << 20,
            }),
        ];
        for resp in responses {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn frame_limit_parses_and_falls_back() {
        assert_eq!(frame_limit_from(None), DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(frame_limit_from(Some("1048576")), 1 << 20);
        assert_eq!(frame_limit_from(Some(" 4096 ")), 4096);
        for bad in ["", "0", "-1", "lots", "1e9"] {
            assert_eq!(frame_limit_from(Some(bad)), DEFAULT_MAX_FRAME_BYTES, "{bad:?}");
        }
    }

    /// Decoders must reject arbitrary garbage with an `Err`, never a panic
    /// or an over-allocation: random byte soup, plus structured mutations
    /// of valid frames (truncations and single-byte flips), at every tag.
    #[test]
    fn byte_soup_never_panics_the_decoders() {
        let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic PRNG seed
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..2000 {
            let len = (next() % 64) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            // Half the rounds: aim the soup at a real tag so the field
            // decoders run, not just the tag dispatch.
            if round % 2 == 0 && !bytes.is_empty() {
                let tags = [0x01, 0x02, 0x03, 0x04, 0x05, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87];
                bytes[0] = tags[(next() % tags.len() as u64) as usize];
            }
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
        // Truncations and bit flips of every well-formed frame.
        let frames: Vec<Vec<u8>> = vec![
            Request::QueryOpts { token: 7, deadline_ms: 9, flags: 1, sql: "SELECT 1".into() }
                .encode(),
            Request::Cancel(7).encode(),
            Request::Stats.encode(),
            Response::CancelAck { found: true }.encode(),
            Response::Stats(StatsReport {
                sched: SchedStats::default(),
                cache: None,
                metrics: vec![("cvr_queries_total".to_string(), 3)],
            })
            .encode(),
            Response::Trace { text: "t".into(), json: "{}".into() }.encode(),
            Response::Snapshot(SnapshotInfo {
                generation: 1,
                store_version: 1,
                segments: 58,
                bytes: 4096,
            })
            .encode(),
            sample_result().encode(),
        ];
        for f in &frames {
            for cut in 0..f.len() {
                let _ = Request::decode(&f[..cut]);
                let _ = Response::decode(&f[..cut]);
            }
            for i in 0..f.len() {
                let mut m = f.clone();
                m[i] ^= 0xFF;
                let _ = Request::decode(&m);
                let _ = Response::decode(&m);
            }
        }
        // The framing layer itself: random wire prefixes either yield a
        // frame, a clean EOF, or an error — never a panic.
        for _ in 0..500 {
            let len = (next() % 24) as usize;
            let wire: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = read_frame(&mut wire.as_slice());
        }
    }

    #[test]
    fn result_payload_decodes_rows() {
        let Response::Result(rs) = sample_result() else { unreachable!() };
        let round = Response::decode(&rs.encode_as_response()).unwrap();
        let Response::Result(back) = round else { panic!("expected RESULT") };
        let rows = back.output().unwrap();
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0].1, 42_000_000);
        assert_eq!(back.io.pool_hits, 9);
        assert!(back.cached, "cached flag survives the round trip");
    }

    #[test]
    fn normalized_clears_only_the_cached_flag() {
        let hit = sample_result();
        let normalized = hit.normalized();
        assert_ne!(hit, normalized);
        let Response::Result(n) = &normalized else { panic!("expected RESULT") };
        assert!(!n.cached);
        // Identical everywhere else: re-set the flag and compare.
        let mut back = n.clone();
        back.cached = true;
        assert_eq!(Response::Result(back), hit);
        // Already-cold responses and non-results are unchanged.
        assert_eq!(normalized.normalized(), normalized);
        let err = Response::Error { code: 1, message: "x".into() };
        assert_eq!(err.normalized(), err);
        // A corrupt flag byte is rejected, not misread.
        let mut bytes = hit.encode();
        let flag_at = 1 + 2 + 2 + "tICL".len(); // tag, id, str16 len, label
        assert_eq!(bytes[flag_at], 1);
        bytes[flag_at] = 7;
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[0x7f]).is_err(), "unknown request tag");
        assert!(Response::decode(&[0x7f]).is_err(), "unknown response tag");
        assert!(Request::decode(&[]).is_err(), "empty payload");
        // Trailing garbage after a well-formed message.
        let mut bytes = Request::Close.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err(), "trailing bytes");
        // Truncated string length.
        let mut q = Request::Query("SELECT".into()).encode();
        q.truncate(q.len() - 2);
        assert!(Request::decode(&q).is_err(), "truncated payload");
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at a frame boundary");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let wire = (u32::MAX).to_le_bytes();
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    impl ResultSet {
        fn encode_as_response(self) -> Vec<u8> {
            Response::Result(self).encode()
        }
    }
}
