//! `EXPLAIN ANALYZE`: zip the planner's estimate tree with the measured
//! span tree of the execution that just ran.
//!
//! The planner's [`Explain`] tree and the tracer's
//! [`SpanRecord`](cvr_core::SpanRecord) tree share an operator vocabulary
//! (`"probe"`, `"scan"`, `"hash-join"`, `"extract-aggregate"`, ...), but
//! not a shape: parallel executions report some operators as post-hoc leaf
//! records, warm executions replace the filter phases with one
//! `filter-replay` span, and row plans trace only the plan root. So the
//! zip is an *assignment*, not a tree walk:
//!
//! 1. both trees flatten pre-order;
//! 2. each explain node takes the first unclaimed span with the same `op`
//!    whose `detail` is empty or a prefix of the node's detail (span
//!    details are bare column names, node details start with them);
//! 3. still-unmatched nodes take any unclaimed span with the same `op`
//!    (details diverge cosmetically for `materialize`/`pipeline`);
//! 4. nodes left without a span render `actual: -`; spans left without a
//!    node (cache replays, the synthetic `"query"` root) are listed
//!    separately so no measurement is silently dropped.
//!
//! The text form mirrors [`Plan::render`]; the JSON mirrors
//! [`Plan::to_json`] field-for-field, adding an `"actual"` object (or
//! `null`) per tree node and a top-level `"trace"` with the raw span tree.

use cvr_core::SpanRecord;
use cvr_plan::{Explain, Plan};
use std::fmt::Write as _;

/// Render the analyzed plan: `(text, json)`, both carrying estimates and
/// actuals. `root` is `None` when the execution recorded no spans.
pub(crate) fn render(plan: &Plan, root: Option<&SpanRecord>) -> (String, String) {
    let spans: Vec<&SpanRecord> = root.map(SpanRecord::flatten).unwrap_or_default();
    let nodes = flatten(&plan.explain);
    let assigned = assign(&nodes, &spans);
    (render_text(plan, &nodes, &spans, &assigned), render_json(plan, root, &assigned))
}

/// Pre-order flattening of an explain tree (mirrors `SpanRecord::flatten`).
fn flatten(node: &Explain) -> Vec<&Explain> {
    let mut out = vec![node];
    for c in &node.children {
        out.extend(flatten(c));
    }
    out
}

/// Assign spans to explain nodes: a detail-compatible pass, then an
/// op-only fallback. Each span is claimed at most once.
fn assign<'a>(nodes: &[&Explain], spans: &[&'a SpanRecord]) -> Vec<Option<&'a SpanRecord>> {
    let mut used = vec![false; spans.len()];
    let mut out: Vec<Option<&SpanRecord>> = vec![None; nodes.len()];
    for (ni, node) in nodes.iter().enumerate() {
        for (si, span) in spans.iter().enumerate() {
            let compatible = span.detail.is_empty() || node.detail.starts_with(&span.detail);
            if !used[si] && span.op == node.op && compatible {
                used[si] = true;
                out[ni] = Some(span);
                break;
            }
        }
    }
    for (ni, node) in nodes.iter().enumerate() {
        if out[ni].is_some() {
            continue;
        }
        for (si, span) in spans.iter().enumerate() {
            if !used[si] && span.op == node.op {
                used[si] = true;
                out[ni] = Some(span);
                break;
            }
        }
    }
    out
}

/// The spans no explain node claimed, in trace order.
fn unclaimed<'a>(
    spans: &[&'a SpanRecord],
    assigned: &[Option<&SpanRecord>],
) -> Vec<&'a SpanRecord> {
    spans
        .iter()
        .filter(|s| !assigned.iter().any(|a| a.is_some_and(|m| std::ptr::eq(m, **s))))
        .copied()
        .collect()
}

/// One span's actuals in the compact text form.
fn actual_text(span: &SpanRecord) -> String {
    let mut out = String::from("(actual:");
    if let Some(rows) = span.rows_out {
        let _ = write!(out, " rows={rows}");
    }
    let _ = write!(out, " wall={}us", span.wall.as_micros());
    if span.io != Default::default() {
        let _ = write!(out, " io={}p/{}B", span.io.pages_read, span.io.bytes_read);
    }
    if !span.workers.is_empty() {
        let _ = write!(out, " workers={} morsels={}", span.workers.len(), span.morsels);
    }
    out.push(')');
    out
}

fn render_text(
    plan: &Plan,
    nodes: &[&Explain],
    spans: &[&SpanRecord],
    assigned: &[Option<&SpanRecord>],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} plan={} order={:?} est={:.4}s sel={:.2e}",
        plan.query_id,
        plan.choice.label(),
        plan.fact_order,
        plan.seconds,
        plan.est_selectivity,
    );
    // Walk the tree recursively so indentation survives, consuming the
    // pre-order assignment in step.
    let mut at = 0usize;
    render_node(&plan.explain, 1, &mut at, assigned, &mut out);
    debug_assert_eq!(at, nodes.len());
    let extra = unclaimed(spans, assigned);
    if !extra.is_empty() {
        let _ = writeln!(out, "  spans outside the plan tree:");
        for s in extra {
            out.push_str(&s.render(2));
        }
    }
    out
}

fn render_node(
    node: &Explain,
    indent: usize,
    at: &mut usize,
    assigned: &[Option<&SpanRecord>],
    out: &mut String,
) {
    let _ = write!(out, "{}{}: {}", "  ".repeat(indent), node.op, node.detail);
    if let Some(rows) = node.est_rows {
        let _ = write!(out, " [~{rows} rows]");
    }
    if let Some(secs) = node.est_cost_seconds {
        let _ = write!(out, " [{secs:.4}s]");
    }
    match assigned[*at] {
        Some(span) => {
            let _ = write!(out, " {}", actual_text(span));
        }
        None => out.push_str(" (actual: -)"),
    }
    out.push('\n');
    *at += 1;
    for c in &node.children {
        render_node(c, indent + 1, at, assigned, out);
    }
}

/// JSON mirroring `Plan::to_json` field-for-field, with the tree annotated
/// (`"actual"` per node) and the raw span tree appended as `"trace"`.
fn render_json(plan: &Plan, root: Option<&SpanRecord>, assigned: &[Option<&SpanRecord>]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"query\": \"{}\", \"plan\": ", plan.query_id);
    json_string(&mut out, &plan.choice.label());
    let _ = write!(
        out,
        ", \"fact_order\": {:?}, \"est_seconds\": {:.6}, \"est_cpu_seconds\": {:.6}, \
         \"est_io_bytes\": {}, \"est_seeks\": {}, \"est_selectivity\": {:.6e}, \"tree\": ",
        plan.fact_order,
        plan.seconds,
        plan.est.cpu_seconds,
        plan.est.io_bytes,
        plan.est.seeks,
        plan.est_selectivity,
    );
    let mut at = 0usize;
    node_json(&plan.explain, &mut at, assigned, &mut out);
    out.push_str(", \"candidates\": [");
    for (i, (label, secs)) in plan.ranking.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"plan\": ");
        json_string(&mut out, label);
        let _ = write!(out, ", \"est_seconds\": {secs:.6}}}");
    }
    out.push_str("], \"trace\": ");
    match root {
        Some(r) => out.push_str(&r.to_json()),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

fn node_json(node: &Explain, at: &mut usize, assigned: &[Option<&SpanRecord>], out: &mut String) {
    out.push_str("{\"op\": ");
    json_string(out, node.op);
    out.push_str(", \"detail\": ");
    json_string(out, &node.detail);
    match node.est_rows {
        Some(r) => {
            let _ = write!(out, ", \"est_rows\": {r}");
        }
        None => out.push_str(", \"est_rows\": null"),
    }
    match node.est_cost_seconds {
        Some(s) => {
            let _ = write!(out, ", \"est_cost_seconds\": {s:.6}");
        }
        None => out.push_str(", \"est_cost_seconds\": null"),
    }
    out.push_str(", \"actual\": ");
    match assigned[*at] {
        Some(span) => {
            match span.rows_out {
                Some(r) => {
                    let _ = write!(out, "{{\"rows\": {r}");
                }
                None => out.push_str("{\"rows\": null"),
            }
            let _ = write!(
                out,
                ", \"wall_us\": {}, \"io_pages\": {}, \"io_bytes\": {}, \"bytes\": {}, \
                 \"workers\": {}, \"morsels\": {}}}",
                span.wall.as_micros(),
                span.io.pages_read,
                span.io.bytes_read,
                span.bytes,
                span.workers.len(),
                span.morsels,
            );
        }
        None => out.push_str("null"),
    }
    *at += 1;
    out.push_str(", \"children\": [");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        node_json(c, at, assigned, out);
    }
    out.push_str("]}");
}

/// JSON string literal (same escaping as the explain tree's encoder).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(op: &str, detail: &str, rows: u64) -> SpanRecord {
        SpanRecord {
            op: op.into(),
            detail: detail.into(),
            rows_out: Some(rows),
            wall: Duration::from_micros(10),
            ..Default::default()
        }
    }

    #[test]
    fn assignment_prefers_detail_prefix_then_falls_back_to_op() {
        let probe_cust = Explain::node("probe", "lo_custkey (dict, 0.5 MB)");
        let probe_supp = Explain::node("probe", "lo_suppkey (dict, 0.5 MB)");
        let mat = Explain::node("materialize", "16 fact column(s) up front");
        let nodes = vec![&probe_cust, &probe_supp, &mat];
        let s1 = span("probe", "lo_suppkey", 11);
        let s2 = span("probe", "lo_custkey", 22);
        let s3 = span("materialize", "fact columns up front", 33);
        let spans = vec![&s1, &s2, &s3];
        let got = assign(&nodes, &spans);
        // Details route probes to the right dimension regardless of order;
        // the materialize span matches by op alone (details diverge).
        assert_eq!(got[0].unwrap().rows_out, Some(22));
        assert_eq!(got[1].unwrap().rows_out, Some(11));
        assert_eq!(got[2].unwrap().rows_out, Some(33));
    }

    #[test]
    fn each_span_is_claimed_at_most_once() {
        let a = Explain::node("scan", "lo_discount sel 1e-1");
        let b = Explain::node("scan", "lo_discount sel 1e-1");
        let nodes = vec![&a, &b];
        let s = span("scan", "lo_discount", 5);
        let spans = vec![&s];
        let got = assign(&nodes, &spans);
        assert!(got[0].is_some());
        assert!(got[1].is_none(), "one span must not annotate two nodes");
    }
}
