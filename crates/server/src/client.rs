//! A minimal blocking client for the wire protocol, plus a retrying
//! wrapper with capped exponential backoff.
//!
//! Used by the differential tests and the `cvr-bench` closed-loop harness;
//! also the reference implementation for anyone speaking the protocol.
//! [`Client`] is one connection with socket timeouts; [`RetryClient`]
//! layers reconnection and retry on top, retrying exactly the failures the
//! server marks retryable (load shedding, transient I/O) plus transport
//! errors, and never retrying semantic failures (parse errors, cancelled
//! or timed-out queries, panics).

use crate::protocol::{read_frame, write_frame, Request, Response, StatsReport};
use cvr_core::QueryError;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket and retry policy for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read socket timeout (a response must start arriving within it).
    pub read_timeout: Duration,
    /// Per-write socket timeout.
    pub write_timeout: Duration,
    /// Retry attempts after the first failure ([`RetryClient`] only).
    pub retries: u32,
    /// Backoff before retry `n` is `base × 2ⁿ`, capped at `backoff_cap`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl ClientConfig {
    /// The capped exponential sleep before retry attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.backoff_base.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.backoff_cap)
    }
}

/// A client-side failure, distinguishing timeouts from other transport
/// errors and from protocol violations.
#[derive(Debug)]
pub enum ClientError {
    /// A socket operation exceeded its configured timeout.
    Timeout {
        /// Which operation timed out (`"connect"`, `"read"`, `"write"`).
        op: &'static str,
    },
    /// Any other transport failure.
    Io(io::Error),
    /// The peer sent bytes that do not decode as a protocol frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout { op } => write!(f, "{op} timed out"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
                ClientError::Timeout { op: "read" }
            }
            io::ErrorKind::InvalidData => ClientError::Protocol(e.to_string()),
            _ => ClientError::Io(e),
        }
    }
}

/// One open connection to a server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` with the default [`ClientConfig`] timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with explicit timeouts. Zero durations disable a timeout.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: &ClientConfig) -> io::Result<Client> {
        let mut last = None;
        for addr in addr.to_socket_addrs()? {
            let attempt = if cfg.connect_timeout.is_zero() {
                TcpStream::connect(addr)
            } else {
                TcpStream::connect_timeout(&addr, cfg.connect_timeout)
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    let some = |d: Duration| (!d.is_zero()).then_some(d);
                    stream.set_read_timeout(some(cfg.read_timeout))?;
                    stream.set_write_timeout(some(cfg.write_timeout))?;
                    return Ok(Client { stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Send one SQL statement and read its response.
    pub fn query(&mut self, sql: &str) -> io::Result<Response> {
        self.round_trip(&Request::Query(sql.to_string()))
    }

    /// Send one SQL statement with lifecycle options: a cancel `token`
    /// (`0` = not cancellable) another connection can abort it with, and a
    /// `deadline_ms` server-side deadline (`0` = server default).
    pub fn query_opts(&mut self, sql: &str, token: u64, deadline_ms: u32) -> io::Result<Response> {
        self.round_trip(&Request::QueryOpts { token, deadline_ms, flags: 0, sql: sql.to_string() })
    }

    /// [`Client::query_opts`] with [`FLAG_TRACE`](crate::protocol::FLAG_TRACE)
    /// set: the response is followed by a mandatory `TRACE` frame carrying
    /// the execution's span tree as `(text, json)` — `None` when the run
    /// recorded no spans (e.g. the statement errored before executing).
    pub fn query_traced(
        &mut self,
        sql: &str,
        token: u64,
        deadline_ms: u32,
    ) -> io::Result<(Response, Option<(String, String)>)> {
        let req = Request::QueryOpts {
            token,
            deadline_ms,
            flags: crate::protocol::FLAG_TRACE,
            sql: sql.to_string(),
        };
        let response = self.round_trip(&req)?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed before the TRACE frame")
        })?;
        let trace = match Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            Response::Trace { text, json } if text.is_empty() && json.is_empty() => None,
            Response::Trace { text, json } => Some((text, json)),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected TRACE, got {other:?}"),
                ));
            }
        };
        Ok((response, trace))
    }

    /// Cancel the statement registered under `token` (sent from *this*
    /// connection while the statement runs on another). Returns whether
    /// the server found a matching in-flight query.
    pub fn cancel(&mut self, token: u64) -> io::Result<bool> {
        match self.round_trip(&Request::Cancel(token))? {
            Response::CancelAck { found } => Ok(found),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected CANCEL_ACK, got {other:?}"),
            )),
        }
    }

    /// Fetch the server's scheduler and cache counters.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATS, got {other:?}"),
            )),
        }
    }

    /// Orderly hang-up.
    pub fn close(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &Request::Close.encode())
    }
}

/// A client that reconnects and retries with capped exponential backoff.
///
/// Two failure classes retry, each up to `cfg.retries` times:
///
/// * **transport errors** (connect/read/write failures and timeouts,
///   mid-frame EOF) — the connection is dropped and re-dialed;
/// * **retryable `ERROR` responses** — codes the server marks as safe to
///   re-submit (load shed, transient I/O). The connection is kept.
///
/// Non-retryable `ERROR` responses (parse errors, cancelled, deadline,
/// memory budget, panic) and `RESULT`/`EXPLAIN` frames return immediately.
/// When retryable errors persist past the budget the *last response* is
/// returned (the caller sees the server's verdict); when transport errors
/// persist the last [`ClientError`] is returned.
pub struct RetryClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<Client>,
}

impl RetryClient {
    /// Set up against `addr` (no connection is made until the first call).
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> RetryClient {
        RetryClient { addr, cfg, conn: None }
    }

    fn conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let client = Client::connect_with(self.addr, &self.cfg).map_err(|e| {
                if e.kind() == io::ErrorKind::TimedOut {
                    ClientError::Timeout { op: "connect" }
                } else {
                    ClientError::Io(e)
                }
            })?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// [`Client::query`] with reconnection and retry.
    pub fn query(&mut self, sql: &str) -> Result<Response, ClientError> {
        self.query_opts(sql, 0, 0)
    }

    /// [`Client::query_opts`] with reconnection and retry.
    pub fn query_opts(
        &mut self,
        sql: &str,
        token: u64,
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self
                .conn()
                .and_then(|c| c.query_opts(sql, token, deadline_ms).map_err(ClientError::from));
            match outcome {
                Ok(Response::Error { code, message }) if QueryError::retryable_code(code) => {
                    if attempt >= self.cfg.retries {
                        return Ok(Response::Error { code, message });
                    }
                    std::thread::sleep(self.cfg.backoff(attempt));
                    attempt += 1;
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Transport failure: the connection state is unknown —
                    // drop it and re-dial on the next attempt.
                    self.conn = None;
                    if attempt >= self.cfg.retries {
                        return Err(e);
                    }
                    std::thread::sleep(self.cfg.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }
}
