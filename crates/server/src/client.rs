//! A minimal blocking client for the wire protocol.
//!
//! Used by the differential tests and the `cvr-bench` closed-loop harness;
//! also the reference implementation for anyone speaking the protocol.

use crate::protocol::{read_frame, write_frame, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// One open connection to a server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one SQL statement and read its response.
    pub fn query(&mut self, sql: &str) -> io::Result<Response> {
        write_frame(&mut self.stream, &Request::Query(sql.to_string()).encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Orderly hang-up.
    pub fn close(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &Request::Close.encode())
    }
}
