//! The unified `Session` API: the one public way to run a query.
//!
//! Before this crate, running a query meant picking an engine, a
//! configuration, a fact-predicate order, and an entry point by hand.
//! [`Session`] owns all of it: statistics ([`cvr_plan::Catalog`]),
//! planning ([`cvr_plan::Planner`]), both engines, and execution.
//! `Session::query(sql)` parses, plans, and runs; `Session::run` is the
//! same pipeline entered with a descriptor (the "direct-descriptor path"
//! the differential harness compares against).
//!
//! **Determinism contract**: every query executes against a fresh
//! [`IoSession`] over an unbounded buffer pool, so outputs *and* I/O
//! accounting depend only on the query and the chosen plan — never on what
//! ran before, on which connection, or on how many queries run
//! concurrently. "N concurrent queries ≡ the same N serial, byte-identical"
//! is a test, not an aspiration.

use crate::parser::{self, ParseError, Statement};
use cvr_core::morsel::Parallelism;
use cvr_core::ColumnEngine;
use cvr_data::gen::SsbTables;
use cvr_data::queries::{QueryId, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::value::DataType;
use cvr_plan::{Catalog, PhysicalChoice, Plan, Planner};
use cvr_row::designs::{RowDb, RowDesign};
use cvr_storage::io::{BufferPool, IoSession, IoStats};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A failure answering a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The SQL failed to parse or analyze.
    Parse(ParseError),
}

impl SessionError {
    /// Stable numeric code for the wire protocol.
    pub fn code(&self) -> u16 {
        match self {
            SessionError::Parse(e) => e.code(),
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> SessionError {
        SessionError::Parse(e)
    }
}

/// One column of a result set: name and logical type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name (`"d_year"`, or the aggregate's SQL text).
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
}

/// A successful query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RowsResponse {
    /// The executed query's id (paper id when the SQL matched a paper
    /// query, `Q0.*` for ad-hoc, `Q9.*` for generated descriptors).
    pub query_id: QueryId,
    /// Label of the plan the planner picked (`tICL`, `row:MV`, ...).
    pub plan: String,
    /// Result-set column metadata: the group columns, then the aggregate.
    pub columns: Vec<ColumnMeta>,
    /// The rows, in normalized (ascending group-key) order.
    pub output: QueryOutput,
    /// I/O accounting of this execution (fresh session per query, so this
    /// is deterministic for a given query + plan).
    pub io: IoStats,
}

/// What a statement returned.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// A `SELECT`: rows plus metadata.
    Rows(RowsResponse),
    /// An `EXPLAIN SELECT`: the plan, never executed.
    Explain {
        /// Human-readable tree (identical to the CLI binaries' rendering).
        text: String,
        /// Stable-field JSON (identical to `Plan::to_json`).
        json: String,
    },
}

/// A session over one generated dataset: statistics, planner, both
/// engines, and the execution pipeline behind one `query(&str)` call.
///
/// `Session` is `Sync`; one instance serves any number of threads
/// concurrently (the TCP server shares one behind an `Arc`).
pub struct Session {
    engine: ColumnEngine,
    planner: Planner,
    tables: Arc<SsbTables>,
    par: Parallelism,
    /// Row-engine physical designs, built lazily the first time a plan
    /// picks one and cached for the session's lifetime.
    row_dbs: Mutex<HashMap<RowDesign, Arc<RowDb>>>,
}

impl Session {
    /// Build a session over `tables` at the process-default parallelism
    /// ([`Parallelism::from_env`]).
    pub fn new(tables: Arc<SsbTables>) -> Session {
        Session::with_parallelism(tables, Parallelism::from_env())
    }

    /// Build a session with an explicit [`Parallelism`] for the column
    /// engine's morsel pool. Results and I/O accounting are byte-identical
    /// at every thread count.
    pub fn with_parallelism(tables: Arc<SsbTables>, par: Parallelism) -> Session {
        let engine = ColumnEngine::new(tables.clone());
        let planner = Planner::new(Catalog::build(&engine));
        Session { engine, planner, tables, par, row_dbs: Mutex::new(HashMap::new()) }
    }

    /// The planner (statistics + cost model) this session plans with.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Parse and answer one SQL statement.
    pub fn query(&self, sql: &str) -> Result<QueryResponse, SessionError> {
        match parser::parse(sql)? {
            Statement::Select(q) => Ok(QueryResponse::Rows(self.run(&q))),
            Statement::Explain(q) => {
                let plan = self.explain(&q);
                Ok(QueryResponse::Explain { text: plan.render(), json: plan.to_json() })
            }
        }
    }

    /// Plan `q` without executing it — the `EXPLAIN` path, also entered
    /// with a descriptor.
    pub fn explain(&self, q: &SsbQuery) -> Plan {
        self.planner.plan(q)
    }

    /// Plan and execute a descriptor: the direct-descriptor path.
    ///
    /// `Session::query(sql)` is exactly `parse` + `run`, so a SQL-submitted
    /// query and its descriptor produce byte-identical outputs and
    /// [`IoStats`].
    pub fn run(&self, q: &SsbQuery) -> RowsResponse {
        let plan = self.planner.plan(q);
        let io = IoSession::new(BufferPool::unbounded());
        let output = match plan.choice {
            PhysicalChoice::Column(cfg) => {
                self.engine.execute_planned(q, cfg, &plan.fact_order, self.par, &io)
            }
            PhysicalChoice::Row(design) => {
                self.row_db(design).execute_planned(q, &plan.fact_order, &io)
            }
        };
        RowsResponse {
            query_id: q.id,
            plan: plan.choice.label(),
            columns: response_columns(q),
            output,
            io: io.stats(),
        }
    }

    fn row_db(&self, design: RowDesign) -> Arc<RowDb> {
        let mut dbs = self.row_dbs.lock().expect("row_dbs mutex poisoned");
        dbs.entry(design)
            .or_insert_with(|| Arc::new(RowDb::build(self.tables.clone(), design)))
            .clone()
    }
}

/// Result-set metadata for `q`: the group columns (with their schema
/// types), then the aggregate as an integer column named by its SQL text.
fn response_columns(q: &SsbQuery) -> Vec<ColumnMeta> {
    let schema = cvr_data::schema::star_schema();
    let mut cols: Vec<ColumnMeta> = q
        .group_by
        .iter()
        .map(|g| {
            let t = schema.dim(g.dim);
            let dtype = t.columns[t.col(g.column)].dtype;
            ColumnMeta { name: g.column.to_string(), dtype }
        })
        .collect();
    cols.push(ColumnMeta { name: parser::agg_sql(q.aggregate).to_string(), dtype: DataType::Int });
    cols
}
