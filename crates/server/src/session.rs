//! The unified `Session` API: the one public way to run a query.
//!
//! Before this crate, running a query meant picking an engine, a
//! configuration, a fact-predicate order, and an entry point by hand.
//! [`Session`] owns all of it: statistics ([`cvr_plan::Catalog`]),
//! planning ([`cvr_plan::Planner`]), both engines, and execution.
//! `Session::query(sql)` parses, plans, and runs; `Session::run` is the
//! same pipeline entered with a descriptor (the "direct-descriptor path"
//! the differential harness compares against).
//!
//! **Determinism contract**: every query executes against a fresh
//! [`IoSession`] over an unbounded buffer pool, so outputs *and* I/O
//! accounting depend only on the query and the chosen plan — never on what
//! ran before, on which connection, or on how many queries run
//! concurrently. "N concurrent queries ≡ the same N serial, byte-identical"
//! is a test, not an aspiration.

use crate::cache::{CacheStats, QueryCache};
use crate::parser::{self, ParseError, Statement};
use cvr_core::ctx::catch_injected;
use cvr_core::morsel::Parallelism;
use cvr_core::sched::{self, Scheduler};
use cvr_core::{ColumnEngine, QueryCtx, QueryError, SpanRecord, Tracer};
use cvr_data::gen::SsbTables;
use cvr_data::queries::{QueryId, SsbQuery};
use cvr_data::result::QueryOutput;
use cvr_data::value::DataType;
use cvr_plan::{key, Catalog, PhysicalChoice, Plan, Planner};
use cvr_row::designs::{RowDb, RowDesign};
use cvr_storage::fault::{self, FaultState};
use cvr_storage::io::{pages_for, BufferPool, IoSession, IoStats};
use cvr_storage::persist::{self, PersistError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

/// A failure answering a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The SQL failed to parse or analyze.
    Parse(ParseError),
    /// The statement parsed but its execution was aborted by the query
    /// lifecycle: cancelled, past its deadline, over its memory budget,
    /// shed at admission, or killed by an I/O fault.
    Query(QueryError),
}

impl SessionError {
    /// Stable numeric code for the wire protocol.
    pub fn code(&self) -> u16 {
        match self {
            SessionError::Parse(e) => e.code(),
            SessionError::Query(e) => e.code(),
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> SessionError {
        SessionError::Parse(e)
    }
}

impl From<QueryError> for SessionError {
    fn from(e: QueryError) -> SessionError {
        SessionError::Query(e)
    }
}

/// One column of a result set: name and logical type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name (`"d_year"`, or the aggregate's SQL text).
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
}

/// A successful query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RowsResponse {
    /// The executed query's id (paper id when the SQL matched a paper
    /// query, `Q0.*` for ad-hoc, `Q9.*` for generated descriptors).
    pub query_id: QueryId,
    /// Label of the plan the planner picked (`tICL`, `row:MV`, ...).
    pub plan: String,
    /// Result-set column metadata: the group columns, then the aggregate.
    pub columns: Vec<ColumnMeta>,
    /// The rows, in normalized (ascending group-key) order.
    pub output: QueryOutput,
    /// I/O accounting of this execution (fresh session per query, so this
    /// is deterministic for a given query + plan). A cache hit reports the
    /// stats the cold execution charged — byte-identical by contract.
    pub io: IoStats,
    /// Whether this response was served from the result cache. The *only*
    /// field a cache hit may change.
    pub cached: bool,
}

/// What a statement returned.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// A `SELECT`: rows plus metadata.
    Rows(RowsResponse),
    /// An `EXPLAIN SELECT`: the plan, never executed.
    Explain {
        /// Human-readable tree (identical to the CLI binaries' rendering).
        text: String,
        /// Stable-field JSON (identical to `Plan::to_json`).
        json: String,
    },
    /// A `SNAPSHOT` or `RELOAD`: what was written or loaded.
    Snapshot(SnapshotInfo),
}

/// The versioned store a session serves: tables, the column engine built
/// over them, and the planner's statistics — pinned together behind one
/// `Arc` so a reload swaps all three atomically. Queries clone the `Arc`
/// at entry and run against that snapshot to completion, so a mid-query
/// swap never mixes generations (the segment-swap seam a future write
/// path plugs into).
struct StoreState {
    engine: ColumnEngine,
    planner: Planner,
    tables: Arc<SsbTables>,
    /// The version every cache and plan-memo key embeds: `0` for an
    /// in-memory generated store, the manifest generation once a snapshot
    /// is loaded. Any swap changes it, invalidating all cached entries.
    version: u64,
}

impl StoreState {
    fn build(tables: Arc<SsbTables>, version: u64) -> StoreState {
        let engine = ColumnEngine::new(tables.clone());
        let planner = Planner::new(Catalog::build(&engine));
        StoreState { engine, planner, tables, version }
    }
}

/// What a `SNAPSHOT` or `RELOAD` statement reports (and what the wire's
/// snapshot frame carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Manifest generation written (snapshot) or loaded (reload).
    pub generation: u64,
    /// The session's store version after the statement.
    pub store_version: u64,
    /// Segment files in the snapshot.
    pub segments: u32,
    /// Total bytes written or read.
    pub bytes: u64,
}

/// A session over one generated dataset: statistics, planner, both
/// engines, and the execution pipeline behind one `query(&str)` call.
///
/// `Session` is `Sync`; one instance serves any number of threads
/// concurrently (the TCP server shares one behind an `Arc`).
pub struct Session {
    /// The current store; see [`StoreState`]. Readers clone the `Arc`
    /// (one brief read-lock); only [`Session::reload`] writes.
    store: RwLock<Arc<StoreState>>,
    /// Directory for durable snapshots (`CVR_DATA_DIR` or
    /// [`Session::set_data_dir`]); `None` disables SNAPSHOT/RELOAD.
    data_dir: Mutex<Option<PathBuf>>,
    par: Parallelism,
    /// Row-engine physical designs, built lazily the first time a plan
    /// picks one and cached for the session's lifetime.
    row_dbs: Mutex<HashMap<RowDesign, Arc<RowDb>>>,
    /// The shared scheduler every query passes through: admission first,
    /// then fair worker leases inside the morsel fan-outs.
    sched: Arc<Scheduler>,
    /// Result/intermediate cache; `None` when disabled
    /// (`CVR_CACHE_BYTES=0`).
    cache: Option<QueryCache>,
    /// Memoized plans keyed by [`key::plan_key`]. Planning is pure — the
    /// catalog is fixed for a session's lifetime — so a repeated
    /// descriptor reuses the enumerated plan instead of re-costing the
    /// whole candidate grid; on the cache-hit path this is most of the
    /// remaining work.
    plans: Mutex<HashMap<String, Arc<Plan>>>,
    /// Test-only fault injection: `query` panics when the SQL contains
    /// this needle (see `inject_panic_on`).
    fault: Mutex<Option<String>>,
    /// Per-session storage fault injection ([`Session::set_faults`]):
    /// adopted by every statement this session runs and by the morsel
    /// workers it spawns, isolated from other sessions and from the
    /// `CVR_FAULT` process default.
    faults: Mutex<Option<Arc<FaultState>>>,
}

/// Cache budget from `CVR_CACHE_BYTES` (default 64 MiB; `0` disables).
fn cache_budget_from_env() -> usize {
    std::env::var("CVR_CACHE_BYTES").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(64 << 20)
}

impl Session {
    /// Build a session over `tables` at the process-default parallelism
    /// ([`Parallelism::from_env`]).
    pub fn new(tables: Arc<SsbTables>) -> Session {
        Session::with_parallelism(tables, Parallelism::from_env())
    }

    /// Build a session with an explicit [`Parallelism`] for the column
    /// engine's morsel pool. Results and I/O accounting are byte-identical
    /// at every thread count.
    pub fn with_parallelism(tables: Arc<SsbTables>, par: Parallelism) -> Session {
        Session::with_cache_budget(tables, par, cache_budget_from_env())
    }

    /// Build a session with an explicit cache byte budget (`0` disables
    /// caching entirely — every query executes cold).
    pub fn with_cache_budget(
        tables: Arc<SsbTables>,
        par: Parallelism,
        cache_bytes: usize,
    ) -> Session {
        // `CVR_DATA_DIR` names a durable store: load the newest valid
        // snapshot generation and serve it instead of the generated
        // tables. An empty directory is a fresh deployment (serve the
        // generated tables, SNAPSHOT will seed it); a damaged one warns
        // and falls back to the generated tables rather than refusing to
        // start.
        let data_dir = std::env::var_os("CVR_DATA_DIR").map(PathBuf::from);
        let store = match &data_dir {
            None => StoreState::build(tables, 0),
            Some(dir) => match persist::load_latest(dir) {
                Ok((loaded, report)) => {
                    if report.fallbacks > 0 {
                        cvr_obs::warn(&format!(
                            "data dir {}: newest {} generation(s) corrupt, recovered from generation {}",
                            dir.display(),
                            report.fallbacks,
                            report.generation
                        ));
                    }
                    StoreState::build(Arc::new(loaded), report.generation)
                }
                Err(PersistError::NoSnapshot) => StoreState::build(tables, 0),
                Err(e) => {
                    cvr_obs::warn(&format!(
                        "data dir {}: {e}; serving generated tables",
                        dir.display()
                    ));
                    StoreState::build(tables, 0)
                }
            },
        };
        // Sessions share the process-default scheduler: concurrent queries
        // split the machine's workers instead of each spawning a full pool.
        let sched = Scheduler::process_default();
        sched::install(sched.clone());
        Session {
            store: RwLock::new(Arc::new(store)),
            data_dir: Mutex::new(data_dir),
            par,
            row_dbs: Mutex::new(HashMap::new()),
            sched,
            cache: (cache_bytes > 0).then(|| QueryCache::new(cache_bytes)),
            plans: Mutex::new(HashMap::new()),
            fault: Mutex::new(None),
            faults: Mutex::new(None),
        }
    }

    /// The store snapshot a statement executes against: cloned once at
    /// entry, held to completion. A concurrent reload swaps the slot
    /// without disturbing in-flight statements.
    fn store(&self) -> Arc<StoreState> {
        self.store.read().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Version of the store every cache and plan-memo key embeds; a
    /// [`Session::reload`] changes it, invalidating all cached entries.
    pub fn store_version(&self) -> u64 {
        self.store().version
    }

    /// The tables the session currently serves.
    pub fn tables(&self) -> Arc<SsbTables> {
        self.store().tables.clone()
    }

    /// Point the session at a durable store directory (the programmatic
    /// form of `CVR_DATA_DIR`); `None` disables SNAPSHOT/RELOAD.
    pub fn set_data_dir(&self, dir: Option<PathBuf>) {
        *self.data_dir.lock().unwrap_or_else(PoisonError::into_inner) = dir;
    }

    /// The durable store directory, if one is configured.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.data_dir.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Write a durable snapshot of the current tables as the next manifest
    /// generation (see `cvr_storage::persist` for the commit protocol).
    /// The served store is unchanged — same bytes, same version — so
    /// caches stay valid.
    pub fn snapshot(&self) -> Result<SnapshotInfo, QueryError> {
        let Some(dir) = self.data_dir() else {
            return Err(QueryError::Io { detail: "no data directory configured".to_string() });
        };
        let store = self.store();
        let _faults = fault::adopt_opt(self.faults());
        let report = persist::write_snapshot(&dir, &store.tables).map_err(persist_error)?;
        Ok(SnapshotInfo {
            generation: report.generation,
            store_version: store.version,
            segments: report.segments as u32,
            bytes: report.bytes,
        })
    }

    /// Reload the newest valid snapshot generation from the data
    /// directory and swap it in as the served store. The store version
    /// becomes the loaded generation, so every result-cache entry and
    /// memoized plan keyed against the old store is unreachable; row
    /// designs are rebuilt lazily from the new tables.
    pub fn reload(&self) -> Result<SnapshotInfo, QueryError> {
        let Some(dir) = self.data_dir() else {
            return Err(QueryError::Io { detail: "no data directory configured".to_string() });
        };
        let _faults = fault::adopt_opt(self.faults());
        let (tables, report) = persist::load_latest(&dir).map_err(persist_error)?;
        if report.fallbacks > 0 {
            cvr_obs::warn(&format!(
                "reload from {}: newest {} generation(s) corrupt, recovered from generation {}",
                dir.display(),
                report.fallbacks,
                report.generation
            ));
        }
        let next = Arc::new(StoreState::build(Arc::new(tables), report.generation));
        *self.store.write().unwrap_or_else(PoisonError::into_inner) = next;
        // Row designs embed the old tables; drop them so the next row-plan
        // query rebuilds from the loaded generation.
        self.row_dbs.lock().unwrap_or_else(PoisonError::into_inner).clear();
        Ok(SnapshotInfo {
            generation: report.generation,
            store_version: report.generation,
            segments: report.segments as u32,
            bytes: report.bytes,
        })
    }

    /// Plan `q`, memoized per descriptor. Plans are a few KB each; the
    /// memo is cleared wholesale past a generous entry cap rather than
    /// tracked byte-by-byte.
    fn plan_cached(&self, store: &StoreState, q: &SsbQuery) -> Arc<Plan> {
        const MAX_MEMOIZED_PLANS: usize = 4096;
        let pkey = key::plan_key(q, store.version);
        if let Some(plan) = self.plans.lock().unwrap_or_else(PoisonError::into_inner).get(&pkey) {
            return plan.clone();
        }
        // Plan outside the lock — enumeration is pure, so two threads
        // racing the same key just insert the same plan twice.
        let plan = Arc::new(store.planner.plan(q));
        let mut plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        if plans.len() >= MAX_MEMOIZED_PLANS {
            plans.clear();
        }
        plans.insert(pkey, plan.clone());
        plan
    }

    /// Cache counters, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(QueryCache::stats)
    }

    /// The shared scheduler this session admits queries through.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Make `query` panic whenever the SQL contains `needle` — test-only
    /// fault injection for the serving layer's panic-containment tests.
    #[doc(hidden)]
    pub fn inject_panic_on(&self, needle: &str) {
        let mut slot = self.fault.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(needle.to_string());
    }

    /// Arm per-session storage fault injection from a `CVR_FAULT`-style
    /// spec (`"io:0.01,stall:0.05:10,seed:42"`); `None` disarms. Every
    /// statement this session runs adopts the state for its duration —
    /// including its morsel workers — so concurrent sessions (and tests)
    /// inject faults independently, without a process-global install.
    ///
    /// Fault probabilities are **per page touch**, so they multiply with
    /// scale: a spec whose expected fault count over one full fact scan
    /// exceeds ~0.5 draws a warning — at that rate most paper queries
    /// abort and the spec is probably a units mistake (`io:0.01` means 1%
    /// *of pages*, not 1% of queries).
    pub fn set_faults(&self, spec: Option<&str>) -> Result<(), String> {
        let state = match spec {
            Some(s) => Some(FaultState::from_spec(s)?),
            None => None,
        };
        if let Some(state) = &state {
            let cfg = state.config();
            if cfg.io > 0.0 {
                // Page touches of the heaviest paper query ≈ one full
                // compressed fact scan (tICL touches every fact column).
                let store = self.store();
                let pages =
                    pages_for(store.engine.db(cvr_core::EngineConfig::FULL).fact_bytes()) as f64;
                let expected = cfg.io * pages;
                if expected > 0.5 {
                    cvr_obs::warn(&format!(
                        "fault spec io:{} × ~{pages:.0} fact pages ≈ {expected:.1} expected faults \
                         per full scan; most queries will abort (probabilities are per page touch)",
                        cfg.io
                    ));
                }
            }
        }
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = state;
        Ok(())
    }

    /// The armed fault state, if any (the server adopts it around frame
    /// writes so truncation faults hit the send path too).
    pub fn faults(&self) -> Option<Arc<FaultState>> {
        self.faults.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Parse and answer one SQL statement under an unbounded lifecycle.
    pub fn query(&self, sql: &str) -> Result<QueryResponse, SessionError> {
        self.query_ctx(sql, &QueryCtx::unbounded())
    }

    /// Parse and answer one SQL statement under `ctx`: the execution polls
    /// the context's cancellation flag, deadline, and memory budget at
    /// phase and morsel boundaries, and admission may shed under load —
    /// every abort surfaces as [`SessionError::Query`].
    pub fn query_ctx(&self, sql: &str, ctx: &QueryCtx) -> Result<QueryResponse, SessionError> {
        if let Some(needle) = &*self.fault.lock().unwrap_or_else(PoisonError::into_inner) {
            if sql.contains(needle.as_str()) {
                panic!("injected fault: statement contains {needle:?}");
            }
        }
        match parser::parse(sql)? {
            Statement::Select(q) => Ok(QueryResponse::Rows(self.run_ctx(&q, ctx)?)),
            Statement::Explain(q) => {
                let store = self.store();
                let plan = self.plan_cached(&store, &q);
                let (text, json) = self.render_explain(&store, &q, &plan);
                Ok(QueryResponse::Explain { text, json })
            }
            Statement::ExplainAnalyze(q) => {
                let (text, json) = self.explain_analyze(&q, ctx)?;
                Ok(QueryResponse::Explain { text, json })
            }
            Statement::Snapshot => Ok(QueryResponse::Snapshot(self.snapshot()?)),
            Statement::Reload => Ok(QueryResponse::Snapshot(self.reload()?)),
        }
    }

    /// `EXPLAIN` rendering: the plan tree plus the cache's view of this
    /// query — whether a result or filter intermediate is resident right
    /// now (a pure peek; counters and LRU order are untouched).
    fn render_explain(&self, store: &StoreState, q: &SsbQuery, plan: &Plan) -> (String, String) {
        let mut text = plan.render();
        let mut json = plan.to_json();
        match &self.cache {
            None => {
                text.push_str("\ncache: off");
                inject_json_field(&mut json, r#""cache": {"enabled": false}"#);
            }
            Some(cache) => {
                let label = plan.choice.label();
                let rkey = key::descriptor_key(q, &label, &plan.fact_order, store.version);
                let fkey = key::filter_key(q, &label, &plan.fact_order, store.version);
                let (result, filter) = cache.peek(&rkey, &fkey);
                let s = cache.stats();
                let hit = |b: bool| if b { "hit" } else { "miss" };
                text.push_str(&format!(
                    "\ncache: result={} filter={} ({} / {} bytes)",
                    hit(result),
                    hit(filter),
                    s.bytes,
                    s.budget
                ));
                inject_json_field(
                    &mut json,
                    &format!(
                        r#""cache": {{"enabled": true, "result": "{}", "filter": "{}", "bytes": {}, "budget": {}}}"#,
                        hit(result),
                        hit(filter),
                        s.bytes,
                        s.budget
                    ),
                );
            }
        }
        (text, json)
    }

    /// Plan `q` without executing it — the `EXPLAIN` path, also entered
    /// with a descriptor.
    pub fn explain(&self, q: &SsbQuery) -> Plan {
        (*self.plan_cached(&self.store(), q)).clone()
    }

    /// `EXPLAIN ANALYZE`: execute `q` under a tracer, then zip the
    /// planner's estimate tree with the measured span tree — `(text,
    /// json)`, estimates and actuals side by side per operator.
    ///
    /// The result-cache *read* is bypassed (a hit executes no operators,
    /// leaving nothing to measure); the execution itself is the ordinary
    /// pipeline, so the actuals are exactly what a plain `SELECT` would
    /// have measured, and the result still lands in the cache.
    pub fn explain_analyze(
        &self,
        q: &SsbQuery,
        ctx: &QueryCtx,
    ) -> Result<(String, String), QueryError> {
        ctx.attach_tracer(Tracer::new());
        let tracer = ctx.tracer().expect("tracer attached above").clone();
        let plan = self.plan_cached(&self.store(), q);
        self.run_inner(q, ctx, true, false)?;
        let root = tracer.take_root();
        Ok(crate::analyze::render(&plan, root.as_ref()))
    }

    /// Execute a descriptor under a fresh tracer, returning the response
    /// *and* the measured span tree. The response is byte-identical to
    /// [`Session::run_ctx`] — spans observe, they never charge.
    pub fn run_traced(
        &self,
        q: &SsbQuery,
        ctx: &QueryCtx,
    ) -> Result<(RowsResponse, Option<SpanRecord>), QueryError> {
        ctx.attach_tracer(Tracer::new());
        let tracer = ctx.tracer().expect("tracer attached above").clone();
        let response = self.run_inner(q, ctx, true, true)?;
        Ok((response, tracer.take_root()))
    }

    /// Plan and execute a descriptor: the direct-descriptor path.
    ///
    /// `Session::query(sql)` is exactly `parse` + `run`, so a SQL-submitted
    /// query and its descriptor produce byte-identical outputs and
    /// [`IoStats`].
    pub fn run(&self, q: &SsbQuery) -> RowsResponse {
        // Unbounded and non-sheddable: this path keeps its infallible
        // signature, so the only failures it can see are injected faults —
        // re-raised as panics exactly like any other engine panic.
        self.run_inner(q, &QueryCtx::unbounded(), false, true).unwrap_or_else(|e| {
            std::panic::panic_any(e);
        })
    }

    /// [`Session::run`] under a [`QueryCtx`]: the fallible, sheddable form
    /// every network-submitted query goes through.
    pub fn run_ctx(&self, q: &SsbQuery, ctx: &QueryCtx) -> Result<RowsResponse, QueryError> {
        self.run_inner(q, ctx, true, true)
    }

    fn run_inner(
        &self,
        q: &SsbQuery,
        ctx: &QueryCtx,
        sheddable: bool,
        read_result_cache: bool,
    ) -> Result<RowsResponse, QueryError> {
        let started = Instant::now();
        // Per-session fault injection follows the statement, not the
        // thread: adopt for the duration (morsel workers re-adopt inside
        // the fan-out).
        let _faults = fault::adopt_opt(self.faults());
        // Pin the store for the whole statement: a concurrent reload swaps
        // the session's slot but never this execution's view.
        let store = self.store();
        let plan = self.plan_cached(&store, q);
        let label = plan.choice.label();
        ctx.check()?;

        // Result-cache lookup happens before admission: a hit costs no
        // execution, so it should not wait behind executing queries.
        // `EXPLAIN ANALYZE` skips the read (a hit leaves nothing to
        // measure) but still writes, below.
        let result_key = self
            .cache
            .as_ref()
            .map(|_| key::descriptor_key(q, &label, &plan.fact_order, store.version));
        if read_result_cache {
            if let (Some(cache), Some(rkey)) = (&self.cache, &result_key) {
                if let Some(mut hit) = cache.get_result(rkey) {
                    hit.cached = true;
                    if let Some(tracer) = ctx.tracer() {
                        tracer.leaf(
                            "result-cache",
                            "hit",
                            Some(hit.output.rows.len() as u64),
                            started.elapsed(),
                            IoStats::default(),
                        );
                    }
                    observe_query(started);
                    return Ok(hit);
                }
            }
        }

        // Admission: bound how many queries execute at once; the morsel
        // fan-outs inside then lease a fair share of the worker budget.
        // The sheddable path can be rejected here (queue full, hopeless
        // deadline) or abandon its ticket while queued (cancelled).
        let _permit = if sheddable { self.sched.try_admit(ctx)? } else { self.sched.admit() };
        let io = IoSession::new(BufferPool::unbounded());
        // Root span: the plan root's explain op (`column-plan` /
        // `row-plan`), so EXPLAIN ANALYZE zips the root by name. A no-op
        // when no tracer is attached.
        let mut root_span = ctx.span(plan.explain.op, &label, &io);
        let output = match plan.choice {
            PhysicalChoice::Column(cfg) => {
                self.run_column(&store, q, cfg, &plan, &label, &io, ctx)?
            }
            PhysicalChoice::Row(design) => {
                ctx.check()?;
                // The row engines have no morsel boundaries to poll, but
                // injected storage faults still surface as typed errors.
                catch_injected(|| {
                    self.row_db(&store, design).execute_planned(q, &plan.fact_order, &io)
                })?
            }
        };
        root_span.rows(output.rows.len() as u64);
        drop(root_span);
        // Deliberately no post-execution `ctx.check()`: completed work
        // ships even when a cancel races the finish line.
        let response = RowsResponse {
            query_id: q.id,
            plan: label,
            columns: response_columns(q),
            output,
            io: io.stats(),
            cached: false,
        };
        if let (Some(cache), Some(rkey)) = (&self.cache, result_key) {
            cache.put_result(rkey, &response);
        }
        observe_query(started);
        Ok(response)
    }

    /// Column-engine execution with filter-intermediate reuse: a cached
    /// [`cvr_core::FilterCapture`] for this filter + plan replays the
    /// filter phases' charges and runs only phase 3; a miss executes cold
    /// while capturing the filter for the next query that shares it.
    #[allow(clippy::too_many_arguments)]
    fn run_column(
        &self,
        store: &StoreState,
        q: &SsbQuery,
        cfg: cvr_core::EngineConfig,
        plan: &Plan,
        label: &str,
        io: &IoSession,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, QueryError> {
        let engine = &store.engine;
        let Some(cache) = &self.cache else {
            return engine.try_execute_planned(q, cfg, &plan.fact_order, self.par, io, ctx);
        };
        let fkey = key::filter_key(q, label, &plan.fact_order, store.version);
        if let Some(capture) = cache.get_filter(&fkey) {
            if let Some(out) = engine.try_execute_planned_warm(
                q,
                cfg,
                &plan.fact_order,
                self.par,
                io,
                &capture,
                ctx,
            )? {
                return Ok(out);
            }
            // Shape mismatch (cannot happen with a fixed per-session
            // parallelism, but the contract is "fall back cold, never
            // fail"): `execute_planned_warm` bails before charging.
            return engine.try_execute_planned(q, cfg, &plan.fact_order, self.par, io, ctx);
        }
        let (out, capture) =
            engine.try_execute_planned_capture(q, cfg, &plan.fact_order, self.par, io, ctx)?;
        if let Some(capture) = capture {
            cache.put_filter(fkey, Arc::new(capture));
        }
        Ok(out)
    }

    fn row_db(&self, store: &StoreState, design: RowDesign) -> Arc<RowDb> {
        // Recover from poison: the map holds only fully-built databases
        // (no invariant spans a panic), so a panic elsewhere while holding
        // the lock must not take down every later row-plan query.
        let mut dbs = self.row_dbs.lock().unwrap_or_else(PoisonError::into_inner);
        dbs.entry(design)
            .or_insert_with(|| Arc::new(RowDb::build(store.tables.clone(), design)))
            .clone()
    }
}

/// Map a storage persistence failure onto the query error taxonomy:
/// corruption stays typed (wire code 105), everything else is I/O.
fn persist_error(e: PersistError) -> QueryError {
    match e {
        PersistError::Corrupt { detail } => QueryError::Corrupt { detail },
        PersistError::NoSnapshot => {
            QueryError::Io { detail: "no snapshot in data directory".to_string() }
        }
        PersistError::Io(detail) => QueryError::Io { detail },
    }
}

/// Count one successfully answered statement in the process metrics.
fn observe_query(started: Instant) {
    cvr_obs::counter("cvr_queries_total", "Statements answered successfully").inc();
    cvr_obs::latency("cvr_query_latency_us", "End-to-end statement latency")
        .observe(started.elapsed().as_micros() as u64);
}

/// Splice `field` into a `Plan::to_json` object, before the closing brace.
fn inject_json_field(json: &mut String, field: &str) {
    debug_assert!(json.ends_with('}'));
    json.truncate(json.len() - 1);
    json.push_str(", ");
    json.push_str(field);
    json.push('}');
}

/// Result-set metadata for `q`: the group columns (with their schema
/// types), then the aggregate as an integer column named by its SQL text.
fn response_columns(q: &SsbQuery) -> Vec<ColumnMeta> {
    let schema = cvr_data::schema::star_schema();
    let mut cols: Vec<ColumnMeta> = q
        .group_by
        .iter()
        .map(|g| {
            let t = schema.dim(g.dim);
            let dtype = t.columns[t.col(g.column)].dtype;
            ColumnMeta { name: g.column.to_string(), dtype }
        })
        .collect();
    cols.push(ColumnMeta { name: parser::agg_sql(q.aggregate).to_string(), dtype: DataType::Int });
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;

    /// Regression: one panicking query poisoning `row_dbs` used to
    /// permanently fail every later row-plan query on every connection.
    #[test]
    fn row_db_recovers_from_a_poisoned_mutex() {
        let session = Session::new(Arc::new(SsbConfig::with_scale(0.0005).generate()));
        // Poison the mutex: a thread panics while holding the lock.
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = session.row_dbs.lock().unwrap();
                panic!("poison row_dbs");
            })
            .join()
        });
        assert!(poisoner.is_err(), "the poisoning thread must panic");
        assert!(session.row_dbs.lock().is_err(), "mutex must actually be poisoned");
        // Both the build path (first use) and the cached path still work.
        let store = session.store();
        let a = session.row_db(&store, RowDesign::Traditional);
        let b = session.row_db(&store, RowDesign::Traditional);
        assert!(Arc::ptr_eq(&a, &b), "the design is built once and cached");
    }

    /// `EXPLAIN` output carries the cache's view without disturbing it.
    #[test]
    fn explain_surfaces_cache_state() {
        let tables = Arc::new(SsbConfig::with_scale(0.002).generate());
        let session = Session::with_cache_budget(tables, Parallelism::serial(), 16 << 20);
        // Prefer a query the planner answers with the invisible join, so
        // the filter tier participates; any query shows the result tier.
        let queries = cvr_data::queries::all_queries();
        let invisible_plan = |q: &SsbQuery| {
            matches!(session.explain(q).choice,
                PhysicalChoice::Column(cfg) if cfg.late_materialization && cfg.invisible_join)
        };
        let q = queries.iter().find(|q| invisible_plan(q)).unwrap_or(&queries[0]);
        let captures = invisible_plan(q);
        let sql = crate::parser::render_sql(q);

        let QueryResponse::Explain { text, json } =
            session.query(&format!("EXPLAIN {sql}")).unwrap()
        else {
            panic!("expected EXPLAIN")
        };
        assert!(text.contains("cache: result=miss filter=miss"), "{text}");
        assert!(json.contains(r#""cache": {"enabled": true, "result": "miss""#), "{json}");

        session.query(&sql).unwrap(); // cold execution populates the cache
        let QueryResponse::Explain { text, .. } = session.query(&format!("EXPLAIN {sql}")).unwrap()
        else {
            panic!("expected EXPLAIN")
        };
        assert!(text.contains("cache: result=hit"), "{text}");
        if captures {
            assert!(text.contains("filter=hit"), "{text}");
        }

        // EXPLAIN peeks must not have counted as result-cache traffic.
        let stats = session.cache_stats().unwrap();
        assert_eq!(stats.result_hits, 0);
        assert_eq!(stats.result_misses, 1);
    }

    /// A disabled cache (budget 0) reports `cache: off` and still answers.
    #[test]
    fn zero_budget_disables_the_cache() {
        let tables = Arc::new(SsbConfig::with_scale(0.0005).generate());
        let session = Session::with_cache_budget(tables, Parallelism::serial(), 0);
        assert!(session.cache_stats().is_none());
        let q = cvr_data::queries::query(1, 1);
        let cold = session.run(&q);
        let again = session.run(&q);
        assert!(!again.cached);
        assert_eq!(cold.output, again.output);
        assert_eq!(cold.io, again.io);
    }
}
