//! Deterministic SSBM data generator.
//!
//! Reproduces the value distributions of the SSB `dbgen` tool that matter to
//! the paper's experiments:
//!
//! * dimension hierarchies — 5 regions × 5 nations × 10 cities,
//!   5 manufacturers × 5 categories × 40 brands, year → month → day — which
//!   drive the *between-predicate rewriting* opportunities of Section 5.4.2;
//! * uniform foreign keys, `lo_quantity ∈ 1..=50`, `lo_discount ∈ 0..=10`,
//!   and `lo_orderdate` uniform over the 7-year calendar — which together
//!   reproduce the thirteen LINEORDER selectivities quoted in Section 3
//!   (1.9×10⁻² for Q1.1 down to 7.6×10⁻⁷ for Q3.4);
//! * table cardinalities as given in Figure 1 (`LINEORDER = 6 000 000 × SF`,
//!   `CUSTOMER = 30 000 × SF`, `SUPPLIER = 2 000 × SF`,
//!   `PART = 200 000 × (1 + ⌊log₂ SF⌋)`, `DATE = one row per day`).
//!
//! The generator is seeded and uses a local SplitMix64 PRNG
//! ([`rng::SplitMix64`]) so outputs are byte-stable across platforms and
//! dependency upgrades — important because the integration tests assert
//! exact aggregate values across engines.

use crate::date::{all_dates, month_name, weekday_name, CalDate};
use crate::schema::{star_schema, StarSchema};
use crate::table::{ColumnData, TableData};

/// Minimal deterministic PRNG (SplitMix64). Public so tests and benches can
/// derive reproducible synthetic columns from the same stream family.
pub mod rng {
    /// SplitMix64: tiny, fast, well-distributed; byte-stable forever.
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Create a generator from a seed.
        pub fn new(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `lo..=hi`.
        pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u64 + 1;
            lo + (self.next_u64() % span) as i64
        }

        /// Uniform index in `0..n`.
        pub fn index(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        /// Pick a uniform element of `xs`.
        pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
            &xs[self.index(xs.len())]
        }
    }
}

use rng::SplitMix64;

// The seeded ad-hoc query generator rides alongside the data generator: both
// are deterministic draws from the same SSB value domains.
pub use crate::workload::{generate_queries, WorkloadConfig, GENERATED_FLIGHT};

/// The five SSB regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 SSB nations, 5 per region (TPC-H nation/region mapping).
/// `NATIONS[r]` lists the nations of `REGIONS[r]`.
pub const NATIONS: [[&str; 5]; 5] = [
    ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"],
    ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
];

/// Market segments for `c_mktsegment`.
pub const MKT_SEGMENTS: [&str; 5] =
    ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];

/// Order priorities for `lo_ordpriority`.
pub const ORD_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes for `lo_shipmode`.
pub const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

/// Part colors (subset of dbgen's list; cardinality is what matters).
pub const COLORS: [&str; 32] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
];

/// Part container sizes and kinds (5 × 8 = 40 combinations, as in dbgen).
pub const CONTAINER_SIZES: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
/// Container kinds.
pub const CONTAINER_KINDS: [&str; 8] = ["BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK", "PKG"];

/// Part type syllables (6 × 5 × 5 = 150 types, as in dbgen).
pub const TYPE_S1: [&str; 6] = ["ANODIZED", "BURNISHED", "ECONOMY", "LARGE", "PROMO", "STANDARD"];
/// Second syllable.
pub const TYPE_S2: [&str; 5] = ["BRUSHED", "PLATED", "POLISHED", "SMALL", "STEEL"];
/// Third syllable.
pub const TYPE_S3: [&str; 5] = ["BRASS", "COPPER", "NICKEL", "STEEL", "TIN"];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SsbConfig {
    /// Scale factor. SF 1 ⇒ 6 M LINEORDER rows (the paper runs SF 10).
    /// Fractional scale factors shrink every table proportionally so tests
    /// and CI-friendly benchmark runs stay fast.
    pub sf: f64,
    /// PRNG seed; two configs with equal `sf` and `seed` generate identical
    /// tables.
    pub seed: u64,
}

impl SsbConfig {
    /// Config at `sf` with the default seed.
    pub fn with_scale(sf: f64) -> Self {
        SsbConfig { sf, seed: 0x55B0_2008 }
    }

    /// Number of LINEORDER rows at this scale.
    pub fn lineorder_rows(&self) -> usize {
        ((6_000_000.0 * self.sf).round() as usize).max(1)
    }

    /// Number of CUSTOMER rows at this scale.
    pub fn customer_rows(&self) -> usize {
        ((30_000.0 * self.sf).round() as usize).max(5)
    }

    /// Number of SUPPLIER rows at this scale.
    pub fn supplier_rows(&self) -> usize {
        ((2_000.0 * self.sf).round() as usize).max(5)
    }

    /// Number of PART rows at this scale.
    ///
    /// SSB defines `200 000 × (1 + ⌊log₂ SF⌋)` for SF ≥ 1; for fractional
    /// scale factors we shrink linearly so the FK space stays proportionate.
    pub fn part_rows(&self) -> usize {
        let base = 200_000.0 * (1.0 + self.sf.max(1.0).log2().floor());
        ((base * self.sf.min(1.0)).round() as usize).max(40)
    }

    /// Generate all five tables.
    pub fn generate(self) -> SsbTables {
        generate(self)
    }
}

impl Default for SsbConfig {
    fn default() -> Self {
        SsbConfig::with_scale(0.01)
    }
}

/// The generated star-schema database.
#[derive(Debug, Clone)]
pub struct SsbTables {
    /// Configuration the tables were generated with.
    pub config: SsbConfig,
    /// The schema (identical to [`star_schema`]).
    pub schema: StarSchema,
    /// LINEORDER fact table.
    pub lineorder: TableData,
    /// CUSTOMER dimension.
    pub customer: TableData,
    /// SUPPLIER dimension.
    pub supplier: TableData,
    /// PART dimension.
    pub part: TableData,
    /// DATE dimension.
    pub date: TableData,
}

impl SsbTables {
    /// Dimension table by enum.
    pub fn dim(&self, d: crate::schema::Dim) -> &TableData {
        match d {
            crate::schema::Dim::Customer => &self.customer,
            crate::schema::Dim::Supplier => &self.supplier,
            crate::schema::Dim::Part => &self.part,
            crate::schema::Dim::Date => &self.date,
        }
    }
}

/// City name: nation padded/truncated to 9 characters + a digit `0..=9`,
/// e.g. `"UNITED KI1"` (from UNITED KINGDOM) — exactly dbgen's scheme, which
/// queries Q3.3/Q3.4 rely on.
pub fn city_name(nation: &str, suffix: i64) -> String {
    let mut base: String = nation.chars().take(9).collect();
    while base.len() < 9 {
        base.push(' ');
    }
    base.push(char::from_digit(suffix as u32, 10).unwrap());
    base
}

fn phone(rng: &mut SplitMix64) -> String {
    format!(
        "{:02}-{:03}-{:03}-{:04}",
        rng.int_range(10, 34),
        rng.int_range(100, 999),
        rng.int_range(100, 999),
        rng.int_range(1000, 9999)
    )
}

fn address(rng: &mut SplitMix64) -> String {
    // dbgen emits v-strings; a short random alphanumeric suffices (the
    // workload never touches addresses).
    let len = rng.int_range(10, 20) as usize;
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        let c = b'a' + (rng.next_u64() % 26) as u8;
        s.push(c as char);
    }
    s
}

fn gen_customer(n: usize, seed: u64) -> TableData {
    let mut rng = SplitMix64::new(seed ^ 0xC057);
    let mut key = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut addr = Vec::with_capacity(n);
    let mut city = Vec::with_capacity(n);
    let mut nation = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut ph = Vec::with_capacity(n);
    let mut seg = Vec::with_capacity(n);
    for i in 0..n {
        let r = rng.index(5);
        let nat = *rng.pick(&NATIONS[r]);
        key.push(i as i64 + 1);
        name.push(format!("Customer#{:09}", i + 1));
        addr.push(address(&mut rng));
        city.push(city_name(nat, rng.int_range(0, 9)));
        nation.push(nat.to_string());
        region.push(REGIONS[r].to_string());
        ph.push(phone(&mut rng));
        seg.push(rng.pick(&MKT_SEGMENTS).to_string());
    }
    TableData::new(
        star_schema().customer,
        vec![
            ColumnData::Int(key),
            ColumnData::Str(name),
            ColumnData::Str(addr),
            ColumnData::Str(city),
            ColumnData::Str(nation),
            ColumnData::Str(region),
            ColumnData::Str(ph),
            ColumnData::Str(seg),
        ],
    )
}

fn gen_supplier(n: usize, seed: u64) -> TableData {
    let mut rng = SplitMix64::new(seed ^ 0x5A11);
    let mut key = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut addr = Vec::with_capacity(n);
    let mut city = Vec::with_capacity(n);
    let mut nation = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut ph = Vec::with_capacity(n);
    for i in 0..n {
        let r = rng.index(5);
        let nat = *rng.pick(&NATIONS[r]);
        key.push(i as i64 + 1);
        name.push(format!("Supplier#{:09}", i + 1));
        addr.push(address(&mut rng));
        city.push(city_name(nat, rng.int_range(0, 9)));
        nation.push(nat.to_string());
        region.push(REGIONS[r].to_string());
        ph.push(phone(&mut rng));
    }
    TableData::new(
        star_schema().supplier,
        vec![
            ColumnData::Int(key),
            ColumnData::Str(name),
            ColumnData::Str(addr),
            ColumnData::Str(city),
            ColumnData::Str(nation),
            ColumnData::Str(region),
            ColumnData::Str(ph),
        ],
    )
}

fn gen_part(n: usize, seed: u64) -> TableData {
    let mut rng = SplitMix64::new(seed ^ 0x9A47);
    let mut key = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut mfgr = Vec::with_capacity(n);
    let mut category = Vec::with_capacity(n);
    let mut brand1 = Vec::with_capacity(n);
    let mut color = Vec::with_capacity(n);
    let mut ptype = Vec::with_capacity(n);
    let mut size = Vec::with_capacity(n);
    let mut container = Vec::with_capacity(n);
    for i in 0..n {
        let m = rng.int_range(1, 5);
        let c = rng.int_range(1, 5);
        let b = rng.int_range(1, 40);
        key.push(i as i64 + 1);
        name.push(format!("{} {}", rng.pick(&COLORS), rng.pick(&COLORS)));
        mfgr.push(format!("MFGR#{m}"));
        category.push(format!("MFGR#{m}{c}"));
        brand1.push(format!("MFGR#{m}{c}{b:02}"));
        color.push(rng.pick(&COLORS).to_string());
        ptype.push(format!("{} {} {}", rng.pick(&TYPE_S1), rng.pick(&TYPE_S2), rng.pick(&TYPE_S3)));
        size.push(rng.int_range(1, 50));
        container.push(format!("{} {}", rng.pick(&CONTAINER_SIZES), rng.pick(&CONTAINER_KINDS)));
    }
    TableData::new(
        star_schema().part,
        vec![
            ColumnData::Int(key),
            ColumnData::Str(name),
            ColumnData::Str(mfgr),
            ColumnData::Str(category),
            ColumnData::Str(brand1),
            ColumnData::Str(color),
            ColumnData::Str(ptype),
            ColumnData::Int(size),
            ColumnData::Str(container),
        ],
    )
}

fn gen_date() -> TableData {
    let dates = all_dates();
    let n = dates.len();
    let mut datekey = Vec::with_capacity(n);
    let mut datestr = Vec::with_capacity(n);
    let mut dayofweek = Vec::with_capacity(n);
    let mut month = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut yearmonthnum = Vec::with_capacity(n);
    let mut yearmonth = Vec::with_capacity(n);
    let mut daynuminweek = Vec::with_capacity(n);
    let mut daynuminmonth = Vec::with_capacity(n);
    let mut daynuminyear = Vec::with_capacity(n);
    let mut monthnuminyear = Vec::with_capacity(n);
    let mut weeknuminyear = Vec::with_capacity(n);
    let mut sellingseason = Vec::with_capacity(n);
    let mut lastdayinweekfl = Vec::with_capacity(n);
    let mut lastdayinmonthfl = Vec::with_capacity(n);
    let mut holidayfl = Vec::with_capacity(n);
    let mut weekdayfl = Vec::with_capacity(n);
    for d in &dates {
        let dow = d.day_of_week();
        datekey.push(d.datekey());
        datestr.push(format!("{} {}, {}", month_name(d.month), d.day, d.year));
        dayofweek.push(weekday_name(dow).to_string());
        month.push(month_name(d.month).to_string());
        year.push(d.year);
        yearmonthnum.push(d.year * 100 + d.month);
        yearmonth.push(format!("{}{}", month_name(d.month), d.year));
        daynuminweek.push(dow);
        daynuminmonth.push(d.day);
        daynuminyear.push(d.day_of_year());
        monthnuminyear.push(d.month);
        weeknuminyear.push(d.week_of_year());
        sellingseason.push(
            match d.month {
                12 | 1 => "Christmas",
                2..=4 => "Spring",
                5..=7 => "Summer",
                8..=10 => "Fall",
                _ => "Winter",
            }
            .to_string(),
        );
        lastdayinweekfl.push(i64::from(dow == 7));
        lastdayinmonthfl.push(i64::from(d.day == crate::date::days_in_month(d.year, d.month)));
        holidayfl.push(i64::from((d.month == 12 && d.day == 25) || (d.month == 1 && d.day == 1)));
        weekdayfl.push(i64::from(dow <= 5));
    }
    TableData::new(
        star_schema().date,
        vec![
            ColumnData::Int(datekey),
            ColumnData::Str(datestr),
            ColumnData::Str(dayofweek),
            ColumnData::Str(month),
            ColumnData::Int(year),
            ColumnData::Int(yearmonthnum),
            ColumnData::Str(yearmonth),
            ColumnData::Int(daynuminweek),
            ColumnData::Int(daynuminmonth),
            ColumnData::Int(daynuminyear),
            ColumnData::Int(monthnuminyear),
            ColumnData::Int(weeknuminyear),
            ColumnData::Str(sellingseason),
            ColumnData::Int(lastdayinweekfl),
            ColumnData::Int(lastdayinmonthfl),
            ColumnData::Int(holidayfl),
            ColumnData::Int(weekdayfl),
        ],
    )
}

fn gen_lineorder(
    n: usize,
    seed: u64,
    n_cust: usize,
    n_supp: usize,
    n_part: usize,
    dates: &[CalDate],
) -> TableData {
    let mut rng = SplitMix64::new(seed ^ 0x11E0);
    let mut orderkey = Vec::with_capacity(n);
    let mut linenumber = Vec::with_capacity(n);
    let mut custkey = Vec::with_capacity(n);
    let mut partkey = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    let mut orderdate = Vec::with_capacity(n);
    let mut ordpriority = Vec::with_capacity(n);
    let mut shippriority = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut extendedprice = Vec::with_capacity(n);
    let mut ordtotalprice = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut revenue = Vec::with_capacity(n);
    let mut supplycost = Vec::with_capacity(n);
    let mut tax = Vec::with_capacity(n);
    let mut commitdate = Vec::with_capacity(n);
    let mut shipmode = Vec::with_capacity(n);

    let mut ok: i64 = 0;
    while orderkey.len() < n {
        ok += 1;
        // Orders have 1..=7 lines (mean 4), like TPC-H/SSB.
        let lines = rng.int_range(1, 7).min((n - orderkey.len()) as i64);
        let o_cust = rng.int_range(1, n_cust as i64);
        let o_date = *rng.pick(dates);
        let o_prio = *rng.pick(&ORD_PRIORITIES);
        let start = orderkey.len();
        let mut total = 0i64;
        for ln in 1..=lines {
            let pk = rng.int_range(1, n_part as i64);
            // Unit price is a deterministic function of the part, like
            // dbgen's retail-price formula; magnitudes are cents.
            let unit_price = 90_000 + (pk * 7) % 110_000;
            let qty = rng.int_range(1, 50);
            let eprice = qty * unit_price;
            let disc = rng.int_range(0, 10);
            orderkey.push(ok);
            linenumber.push(ln);
            custkey.push(o_cust);
            partkey.push(pk);
            suppkey.push(rng.int_range(1, n_supp as i64));
            orderdate.push(o_date.datekey());
            ordpriority.push(o_prio.to_string());
            shippriority.push(0);
            quantity.push(qty);
            extendedprice.push(eprice);
            ordtotalprice.push(0); // patched after the order's lines are known
            discount.push(disc);
            revenue.push(eprice * (100 - disc) / 100);
            supplycost.push(unit_price * 6 / 10);
            tax.push(rng.int_range(0, 8));
            commitdate.push(o_date.plus_days_clamped(rng.int_range(30, 90)).datekey());
            shipmode.push(rng.pick(&SHIP_MODES).to_string());
            total += eprice;
        }
        for slot in &mut ordtotalprice[start..] {
            *slot = total;
        }
    }

    TableData::new(
        star_schema().lineorder,
        vec![
            ColumnData::Int(orderkey),
            ColumnData::Int(linenumber),
            ColumnData::Int(custkey),
            ColumnData::Int(partkey),
            ColumnData::Int(suppkey),
            ColumnData::Int(orderdate),
            ColumnData::Str(ordpriority),
            ColumnData::Int(shippriority),
            ColumnData::Int(quantity),
            ColumnData::Int(extendedprice),
            ColumnData::Int(ordtotalprice),
            ColumnData::Int(discount),
            ColumnData::Int(revenue),
            ColumnData::Int(supplycost),
            ColumnData::Int(tax),
            ColumnData::Int(commitdate),
            ColumnData::Str(shipmode),
        ],
    )
}

/// Generate the full SSBM database for `config`.
pub fn generate(config: SsbConfig) -> SsbTables {
    let schema = star_schema();
    let customer = gen_customer(config.customer_rows(), config.seed);
    let supplier = gen_supplier(config.supplier_rows(), config.seed);
    let part = gen_part(config.part_rows(), config.seed);
    let date = gen_date();
    let dates = all_dates();
    let lineorder = gen_lineorder(
        config.lineorder_rows(),
        config.seed,
        config.customer_rows(),
        config.supplier_rows(),
        config.part_rows(),
        &dates,
    );
    SsbTables { config, schema, lineorder, customer, supplier, part, date }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Dim;

    fn tiny() -> SsbTables {
        SsbConfig { sf: 0.001, seed: 42 }.generate()
    }

    #[test]
    fn cardinalities_scale() {
        let t = tiny();
        assert_eq!(t.lineorder.num_rows(), 6_000);
        assert_eq!(t.customer.num_rows(), 30);
        assert_eq!(t.date.num_rows(), 2_557);
        assert_eq!(t.part.num_rows(), 200);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SsbConfig { sf: 0.0005, seed: 7 }.generate();
        let b = SsbConfig { sf: 0.0005, seed: 7 }.generate();
        assert_eq!(a.lineorder.column("lo_revenue"), b.lineorder.column("lo_revenue"));
        assert_eq!(a.customer.column("c_city"), b.customer.column("c_city"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SsbConfig { sf: 0.0005, seed: 7 }.generate();
        let b = SsbConfig { sf: 0.0005, seed: 8 }.generate();
        assert_ne!(a.lineorder.column("lo_custkey"), b.lineorder.column("lo_custkey"));
    }

    #[test]
    fn foreign_keys_reference_dimensions() {
        let t = tiny();
        let ncust = t.customer.num_rows() as i64;
        for &k in t.lineorder.column("lo_custkey").ints() {
            assert!((1..=ncust).contains(&k));
        }
        let nsupp = t.supplier.num_rows() as i64;
        for &k in t.lineorder.column("lo_suppkey").ints() {
            assert!((1..=nsupp).contains(&k));
        }
        let npart = t.part.num_rows() as i64;
        for &k in t.lineorder.column("lo_partkey").ints() {
            assert!((1..=npart).contains(&k));
        }
        let datekeys: std::collections::HashSet<i64> =
            t.date.column("d_datekey").ints().iter().copied().collect();
        for &k in t.lineorder.column("lo_orderdate").ints() {
            assert!(datekeys.contains(&k), "orderdate {k} not in DATE");
        }
    }

    #[test]
    fn value_domains() {
        let t = tiny();
        for &q in t.lineorder.column("lo_quantity").ints() {
            assert!((1..=50).contains(&q));
        }
        for &d in t.lineorder.column("lo_discount").ints() {
            assert!((0..=10).contains(&d));
        }
        for &x in t.lineorder.column("lo_tax").ints() {
            assert!((0..=8).contains(&x));
        }
        for r in t.customer.column("c_region").strs() {
            assert!(REGIONS.contains(&r.as_str()));
        }
    }

    #[test]
    fn revenue_formula_holds() {
        let t = tiny();
        let ep = t.lineorder.column("lo_extendedprice").ints();
        let disc = t.lineorder.column("lo_discount").ints();
        let rev = t.lineorder.column("lo_revenue").ints();
        for i in 0..t.lineorder.num_rows() {
            assert_eq!(rev[i], ep[i] * (100 - disc[i]) / 100);
        }
    }

    #[test]
    fn city_names_are_ten_chars_with_digit() {
        let t = tiny();
        for c in t.customer.column("c_city").strs() {
            assert_eq!(c.len(), 10, "bad city {c:?}");
            assert!(c.as_bytes()[9].is_ascii_digit());
        }
        assert_eq!(city_name("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_name("CHINA", 3), "CHINA    3");
    }

    #[test]
    fn brand_hierarchy_nests() {
        let t = tiny();
        let mfgr = t.part.column("p_mfgr").strs();
        let cat = t.part.column("p_category").strs();
        let brand = t.part.column("p_brand1").strs();
        for i in 0..t.part.num_rows() {
            assert!(cat[i].starts_with(&mfgr[i][..]), "{} !< {}", mfgr[i], cat[i]);
            assert!(brand[i].starts_with(&cat[i][..]), "{} !< {}", cat[i], brand[i]);
            assert_eq!(brand[i].len(), "MFGR#1101".len());
        }
    }

    #[test]
    fn commitdate_follows_orderdate() {
        let t = tiny();
        let od = t.lineorder.column("lo_orderdate").ints();
        let cd = t.lineorder.column("lo_commitdate").ints();
        for i in 0..t.lineorder.num_rows() {
            assert!(cd[i] >= od[i], "commit {} before order {}", cd[i], od[i]);
        }
    }

    #[test]
    fn ordtotalprice_is_order_sum() {
        let t = tiny();
        let ok = t.lineorder.column("lo_orderkey").ints();
        let ep = t.lineorder.column("lo_extendedprice").ints();
        let tot = t.lineorder.column("lo_ordtotalprice").ints();
        let mut sums: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
        for i in 0..t.lineorder.num_rows() {
            *sums.entry(ok[i]).or_default() += ep[i];
        }
        for i in 0..t.lineorder.num_rows() {
            assert_eq!(tot[i], sums[&ok[i]]);
        }
    }

    #[test]
    fn dim_accessor() {
        let t = tiny();
        assert_eq!(t.dim(Dim::Customer).num_rows(), t.customer.num_rows());
        assert_eq!(t.dim(Dim::Date).num_rows(), 2557);
    }

    #[test]
    fn splitmix_ranges() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.int_range(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        let mut r2 = SplitMix64::new(1);
        let a: Vec<u64> = (0..10).map(|_| r2.next_u64()).collect();
        let mut r3 = SplitMix64::new(1);
        let b: Vec<u64> = (0..10).map(|_| r3.next_u64()).collect();
        assert_eq!(a, b);
    }
}
