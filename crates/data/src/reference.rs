//! Reference query evaluator: slow, obviously correct.
//!
//! A straight-line nested evaluation over the logical tables, used as the
//! *oracle* by every engine's tests: whatever clever plan an engine runs,
//! its output must equal this. No storage, no I/O accounting, no operators —
//! just the query semantics.

use crate::gen::SsbTables;
use crate::queries::SsbQuery;
use crate::result::QueryOutput;
use crate::schema::Dim;
use crate::table::ColumnData;
use crate::value::Value;
use std::collections::HashMap;

/// Evaluate `q` over `tables` by brute force.
pub fn evaluate(tables: &SsbTables, q: &SsbQuery) -> QueryOutput {
    // Dimension key -> row index maps.
    let mut key_maps: HashMap<Dim, HashMap<i64, usize>> = HashMap::new();
    for d in Dim::ALL {
        let keys = tables.dim(d).column(d.key_column()).ints();
        key_maps.insert(d, keys.iter().enumerate().map(|(i, &k)| (k, i)).collect());
    }

    let fact = &tables.lineorder;
    let n = fact.num_rows();
    let agg_cols: Vec<&ColumnData> =
        q.aggregate.fact_columns().iter().map(|c| fact.column(c)).collect();
    let fact_pred_cols: Vec<(&ColumnData, &crate::queries::Pred)> =
        q.fact_predicates.iter().map(|p| (fact.column(p.column), &p.pred)).collect();
    let fk_cols: HashMap<Dim, &ColumnData> =
        Dim::ALL.iter().map(|&d| (d, fact.column(d.fact_fk_column()))).collect();

    let mut groups: HashMap<Vec<Value>, i64> = HashMap::new();
    'rows: for i in 0..n {
        for (col, pred) in &fact_pred_cols {
            if !pred.matches(&col.value(i)) {
                continue 'rows;
            }
        }
        // Resolve dimension rows and check dimension predicates.
        let mut dim_rows: HashMap<Dim, usize> = HashMap::new();
        for d in q.touched_dims() {
            let fk = fk_cols[&d].value(i).as_int();
            let row = *key_maps[&d].get(&fk).expect("dangling foreign key");
            dim_rows.insert(d, row);
        }
        for p in &q.dim_predicates {
            let row = dim_rows[&p.dim];
            if !p.pred.matches(&tables.dim(p.dim).value(row, p.column)) {
                continue 'rows;
            }
        }
        let key: Vec<Value> = q
            .group_by
            .iter()
            .map(|g| tables.dim(g.dim).value(dim_rows[&g.dim], g.column))
            .collect();
        let inputs: Vec<i64> = agg_cols.iter().map(|c| c.value(i).as_int()).collect();
        *groups.entry(key).or_insert(0) += q.aggregate.term(&inputs);
    }

    if groups.is_empty() && q.group_by.is_empty() {
        return QueryOutput::scalar(0);
    }
    QueryOutput::new(groups.into_iter().collect())
}

/// Measured LINEORDER selectivity of `q` (fraction of fact rows passing all
/// predicates) — the Section 3 "selectivity table" experiment.
pub fn measured_selectivity(tables: &SsbTables, q: &SsbQuery) -> f64 {
    let mut key_maps: HashMap<Dim, HashMap<i64, usize>> = HashMap::new();
    for d in q.restricted_dims() {
        let keys = tables.dim(d).column(d.key_column()).ints();
        key_maps.insert(d, keys.iter().enumerate().map(|(i, &k)| (k, i)).collect());
    }
    let fact = &tables.lineorder;
    let n = fact.num_rows();
    let mut matched = 0usize;
    'rows: for i in 0..n {
        for p in &q.fact_predicates {
            if !p.pred.matches(&fact.column(p.column).value(i)) {
                continue 'rows;
            }
        }
        for d in q.restricted_dims() {
            let fk = fact.column(d.fact_fk_column()).value(i).as_int();
            let row = key_maps[&d][&fk];
            for p in q.dim_predicates_on(d) {
                if !p.pred.matches(&tables.dim(d).value(row, p.column)) {
                    continue 'rows;
                }
            }
        }
        matched += 1;
    }
    matched as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SsbConfig;
    use crate::queries::all_queries;

    fn tables() -> SsbTables {
        SsbConfig { sf: 0.005, seed: 42 }.generate()
    }

    #[test]
    fn all_queries_evaluate() {
        let t = tables();
        for q in all_queries() {
            let out = evaluate(&t, &q);
            if q.group_by.is_empty() {
                assert_eq!(out.rows.len(), 1, "{} should be scalar", q.id);
            }
            // Group keys have the declared arity.
            for (k, _) in &out.rows {
                assert_eq!(k.len(), q.group_by.len(), "{}", q.id);
            }
        }
    }

    #[test]
    fn q11_matches_hand_rolled() {
        let t = tables();
        let q = crate::queries::query(1, 1);
        // Hand-rolled: sum(extendedprice*discount) where year(orderdate)=1993
        // and 1<=discount<=3 and quantity<25.
        let od = t.lineorder.column("lo_orderdate").ints();
        let disc = t.lineorder.column("lo_discount").ints();
        let qty = t.lineorder.column("lo_quantity").ints();
        let ep = t.lineorder.column("lo_extendedprice").ints();
        let mut expected = 0i64;
        for i in 0..t.lineorder.num_rows() {
            if od[i] / 10_000 == 1993 && (1..=3).contains(&disc[i]) && qty[i] < 25 {
                expected += ep[i] * disc[i];
            }
        }
        assert_eq!(evaluate(&t, &q).rows[0].1, expected);
        assert!(expected > 0, "test data too small to exercise Q1.1");
    }

    #[test]
    fn selectivities_close_to_paper() {
        let t = SsbConfig { sf: 0.01, seed: 7 }.generate();
        let n = t.lineorder.num_rows() as f64;
        for q in all_queries() {
            let measured = measured_selectivity(&t, &q);
            let expected = q.paper_selectivity;
            // Upper bound always holds (within noise); the lower bound is
            // only meaningful when the expected match count is large enough
            // that sampling noise cannot plausibly zero it out.
            assert!(
                measured <= expected * 2.5 + 5e-5,
                "{}: measured {measured:.2e} vs paper {expected:.2e}",
                q.id
            );
            if expected * n >= 50.0 {
                assert!(
                    measured >= expected / 2.5,
                    "{}: measured {measured:.2e} vs paper {expected:.2e}",
                    q.id
                );
            }
        }
    }

    #[test]
    fn grouped_query_group_count_reasonable() {
        let t = tables();
        let q = crate::queries::query(3, 1);
        let out = evaluate(&t, &q);
        // c_nation × s_nation × year for ASIA-ASIA 92-97: at most 5*5*6.
        assert!(out.rows.len() <= 150);
        assert!(!out.rows.is_empty(), "Q3.1 selects 3.4% of rows; must match at sf=0.005");
    }
}
