//! In-memory logical tables produced by the generator.
//!
//! [`TableData`] is the *logical* interchange format: column-major vectors of
//! native values. It is not an execution format — the row engine serializes
//! it into slotted heap pages and the column engine into compressed column
//! segments. Keeping the interchange format column-major makes both
//! conversions cheap and keeps the generator simple.

use crate::schema::TableSchema;
use crate::value::{DataType, Row, Value};

/// Column-major data for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnData {
    /// Integer column.
    Int(Vec<i64>),
    /// String column.
    Str(Vec<String>),
}

impl ColumnData {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    /// Value at `row` as a [`Value`] (slow path; for tests and stitching).
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Str(v) => Value::str(v[row].as_str()),
        }
    }

    /// Integer slice, panicking for string columns.
    pub fn ints(&self) -> &[i64] {
        match self {
            ColumnData::Int(v) => v,
            ColumnData::Str(_) => panic!("expected int column"),
        }
    }

    /// String slice, panicking for int columns.
    pub fn strs(&self) -> &[String] {
        match self {
            ColumnData::Str(v) => v,
            ColumnData::Int(_) => panic!("expected string column"),
        }
    }

    /// Gather the values at `positions` into a new column.
    pub fn gather(&self, positions: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => {
                ColumnData::Int(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(positions.iter().map(|&p| v[p as usize].clone()).collect())
            }
        }
    }
}

/// A complete logical table: schema plus column-major data.
#[derive(Debug, Clone)]
pub struct TableData {
    /// The table's schema.
    pub schema: TableSchema,
    /// One [`ColumnData`] per schema column, all the same length.
    pub columns: Vec<ColumnData>,
}

impl TableData {
    /// Create a table, validating column count and lengths.
    pub fn new(schema: TableSchema, columns: Vec<ColumnData>) -> Self {
        assert_eq!(schema.arity(), columns.len(), "column count mismatch for {}", schema.name);
        if let Some(first) = columns.first() {
            for (i, c) in columns.iter().enumerate() {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "column {} of {} has inconsistent length",
                    schema.columns[i].name,
                    schema.name
                );
                assert_eq!(
                    c.dtype(),
                    schema.columns[i].dtype,
                    "column {} of {} has wrong type",
                    schema.columns[i].name,
                    schema.name
                );
            }
        }
        TableData { schema, columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// Column data by name.
    pub fn column(&self, name: &str) -> &ColumnData {
        &self.columns[self.schema.col(name)]
    }

    /// Materialize row `i` (slow path).
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Value at (`row`, column `name`).
    pub fn value(&self, row: usize, name: &str) -> Value {
        self.column(name).value(row)
    }

    /// Reorder all columns by `perm`, where `perm[new_pos] = old_pos`.
    ///
    /// Used by `cvr-core` to build sorted projections; returns the permuted
    /// table, leaving `self` untouched.
    pub fn permuted(&self, perm: &[u32]) -> TableData {
        assert_eq!(perm.len(), self.num_rows());
        TableData {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(perm)).collect(),
        }
    }

    /// Keep only the named columns, in the given order (a logical projection).
    pub fn project(&self, names: &[&str]) -> TableData {
        let schema = TableSchema {
            name: self.schema.name,
            columns: names
                .iter()
                .map(|n| self.schema.columns[self.schema.col(n)].clone())
                .collect(),
        };
        let columns = names.iter().map(|n| self.column(n).clone()).collect();
        TableData { schema, columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn tiny() -> TableData {
        let schema = TableSchema {
            name: "t",
            columns: vec![
                ColumnDef { name: "a", dtype: DataType::Int },
                ColumnDef { name: "b", dtype: DataType::Str },
            ],
        };
        TableData::new(
            schema,
            vec![
                ColumnData::Int(vec![10, 20, 30]),
                ColumnData::Str(vec!["x".into(), "y".into(), "z".into()]),
            ],
        )
    }

    #[test]
    fn basic_access() {
        let t = tiny();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(1, "a"), Value::Int(20));
        assert_eq!(t.value(2, "b"), Value::str("z"));
        assert_eq!(t.row(0), vec![Value::Int(10), Value::str("x")]);
    }

    #[test]
    fn gather_and_permute() {
        let t = tiny();
        let g = t.column("a").gather(&[2, 0]);
        assert_eq!(g, ColumnData::Int(vec![30, 10]));
        let p = t.permuted(&[2, 1, 0]);
        assert_eq!(p.value(0, "b"), Value::str("z"));
        assert_eq!(p.value(2, "a"), Value::Int(10));
        // Original untouched.
        assert_eq!(t.value(0, "a"), Value::Int(10));
    }

    #[test]
    fn project_reorders_and_subsets() {
        let t = tiny();
        let p = t.project(&["b"]);
        assert_eq!(p.schema.arity(), 1);
        assert_eq!(p.value(0, "b"), Value::str("x"));
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn new_validates_lengths() {
        let schema = TableSchema {
            name: "t",
            columns: vec![
                ColumnDef { name: "a", dtype: DataType::Int },
                ColumnDef { name: "b", dtype: DataType::Int },
            ],
        };
        TableData::new(schema, vec![ColumnData::Int(vec![1]), ColumnData::Int(vec![1, 2])]);
    }

    #[test]
    #[should_panic(expected = "wrong type")]
    fn new_validates_types() {
        let schema =
            TableSchema { name: "t", columns: vec![ColumnDef { name: "a", dtype: DataType::Int }] };
        TableData::new(schema, vec![ColumnData::Str(vec!["x".into()])]);
    }
}
