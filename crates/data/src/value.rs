//! Logical value and type model shared by both engines.
//!
//! The SSBM needs only two logical types: 64-bit integers (keys, dates encoded
//! as `yyyymmdd`, quantities, prices in cents) and strings (names, regions,
//! categories, ...). Keeping the type lattice this small keeps the operators
//! in both engines monomorphic on their hot paths, which matters for the
//! block-iteration experiments: the column engine works on `&[i64]` /
//! `&[u32]` slices and only touches [`Value`] at plan boundaries.

use std::borrow::Cow;
use std::fmt;

/// Logical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer. Also used for date keys (`yyyymmdd`).
    Int,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Str => write!(f, "str"),
        }
    }
}

/// A single logical value.
///
/// `Value` is deliberately the *slow path* representation: engines use it for
/// predicates carried in query descriptors, group keys at plan tops, and test
/// assertions. Inner loops operate on decoded native arrays instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// String value.
    Str(Box<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The data type of this value.
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Integer payload, panicking when the value is a string.
    ///
    /// Engines call this only after schema validation, so a panic here is a
    /// planner bug, not a data error.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            Value::Str(s) => panic!("expected int value, found string {s:?}"),
        }
    }

    /// String payload, panicking when the value is an integer.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            Value::Int(i) => panic!("expected string value, found int {i}"),
        }
    }

    /// Render the value without allocating for strings.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A materialized row: one value per projected column.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::str("ASIA").as_str(), "ASIA");
        assert_eq!(Value::Int(7).dtype(), DataType::Int);
        assert_eq!(Value::str("x").dtype(), DataType::Str);
    }

    #[test]
    fn value_ordering_within_type() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("ASIA") < Value::str("EUROPE"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(String::from("b")), Value::str("b"));
    }

    #[test]
    fn display_and_render() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::str("y").render(), "y");
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_panics_on_str() {
        Value::str("nope").as_int();
    }

    #[test]
    #[should_panic(expected = "expected string")]
    fn as_str_panics_on_int() {
        Value::Int(1).as_str();
    }
}
