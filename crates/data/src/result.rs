//! Canonical query results shared by every engine.
//!
//! All thirteen SSBM queries return grouped integer sums. Normalizing the
//! result shape here lets the integration tests assert *exact* equality of
//! outputs across the row engine's five physical designs and the column
//! engine's sixteen configurations — the study's correctness backbone.

use crate::value::Value;

/// One result row: group-by key values (empty for scalar aggregates) and the
/// aggregated sum.
pub type ResultRow = (Vec<Value>, i64);

/// A normalized query result: rows sorted by group key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// Sorted result rows.
    pub rows: Vec<ResultRow>,
}

impl QueryOutput {
    /// Normalize (sort by group key) and wrap.
    pub fn new(mut rows: Vec<ResultRow>) -> QueryOutput {
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        QueryOutput { rows }
    }

    /// A scalar result (no group-by).
    pub fn scalar(sum: i64) -> QueryOutput {
        QueryOutput { rows: vec![(Vec::new(), sum)] }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total of the aggregate column, useful as a checksum in benches.
    pub fn checksum(&self) -> i64 {
        self.rows.iter().map(|(_, v)| v).sum()
    }

    /// Render as an ASCII table (examples / debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, sum) in &self.rows {
            for k in key {
                out.push_str(&k.render());
                out.push('\t');
            }
            out.push_str(&sum.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_rows() {
        let out = QueryOutput::new(vec![(vec![Value::Int(2)], 20), (vec![Value::Int(1)], 10)]);
        assert_eq!(out.rows[0].1, 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out.checksum(), 30);
    }

    #[test]
    fn scalar_result() {
        let out = QueryOutput::scalar(42);
        assert_eq!(out.len(), 1);
        assert!(out.rows[0].0.is_empty());
        assert_eq!(out.checksum(), 42);
    }

    #[test]
    fn equality_after_normalization() {
        let a = QueryOutput::new(vec![(vec![Value::str("x")], 1), (vec![Value::str("y")], 2)]);
        let b = QueryOutput::new(vec![(vec![Value::str("y")], 2), (vec![Value::str("x")], 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn render_contains_values() {
        let out = QueryOutput::new(vec![(vec![Value::str("ASIA"), Value::Int(1997)], 5)]);
        let s = out.render();
        assert!(s.contains("ASIA") && s.contains("1997") && s.contains('5'));
    }
}
