//! Canonical query results shared by every engine.
//!
//! All thirteen SSBM queries return grouped integer sums. Normalizing the
//! result shape here lets the integration tests assert *exact* equality of
//! outputs across the row engine's five physical designs and the column
//! engine's sixteen configurations — the study's correctness backbone.

use crate::value::Value;

/// One result row: group-by key values (empty for scalar aggregates) and the
/// aggregated sum.
pub type ResultRow = (Vec<Value>, i64);

/// A normalized query result: rows sorted by group key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// Sorted result rows.
    pub rows: Vec<ResultRow>,
}

impl QueryOutput {
    /// Normalize (sort by group key) and wrap.
    pub fn new(mut rows: Vec<ResultRow>) -> QueryOutput {
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        QueryOutput { rows }
    }

    /// A scalar result (no group-by).
    pub fn scalar(sum: i64) -> QueryOutput {
        QueryOutput { rows: vec![(Vec::new(), sum)] }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total of the aggregate column, useful as a checksum in benches.
    pub fn checksum(&self) -> i64 {
        self.rows.iter().map(|(_, v)| v).sum()
    }

    /// Serialize to the stable binary format (see [`QueryOutput::from_bytes`]).
    ///
    /// This is the one wire representation of a query result: the server
    /// protocol ships these bytes verbatim, and the differential/bench
    /// harnesses compare them to assert byte-identity across execution
    /// paths. Layout (all integers little-endian):
    ///
    /// ```text
    /// u8  version (currently 1)
    /// u32 row count
    /// per row:
    ///   u16 key arity
    ///   per key value: u8 tag (0 = int, 1 = str), then
    ///     int: i64
    ///     str: u32 byte length + UTF-8 bytes
    ///   i64 aggregated sum
    /// ```
    ///
    /// Rows serialize in the normalized (key-sorted) order [`QueryOutput::new`]
    /// establishes, so equal outputs always produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.rows.len() * 24);
        out.push(SERIAL_VERSION);
        out.extend_from_slice(&(self.rows.len() as u32).to_le_bytes());
        for (key, sum) in &self.rows {
            out.extend_from_slice(&(key.len() as u16).to_le_bytes());
            for v in key {
                match v {
                    Value::Int(i) => {
                        out.push(0);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    Value::Str(s) => {
                        out.push(1);
                        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                        out.extend_from_slice(s.as_bytes());
                    }
                }
            }
            out.extend_from_slice(&sum.to_le_bytes());
        }
        out
    }

    /// Decode the [`QueryOutput::to_bytes`] format, rejecting malformed or
    /// truncated input with a description of the first violation.
    pub fn from_bytes(bytes: &[u8]) -> Result<QueryOutput, String> {
        let mut r = Reader { bytes, at: 0 };
        let version = r.u8()?;
        if version != SERIAL_VERSION {
            return Err(format!("unsupported QueryOutput version {version}"));
        }
        let n = r.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let arity = r.u16()? as usize;
            let mut key = Vec::with_capacity(arity);
            for _ in 0..arity {
                key.push(match r.u8()? {
                    0 => Value::Int(r.i64()?),
                    1 => {
                        let len = r.u32()? as usize;
                        let s = std::str::from_utf8(r.take(len)?)
                            .map_err(|e| format!("invalid UTF-8 in string value: {e}"))?;
                        Value::str(s)
                    }
                    t => return Err(format!("unknown value tag {t}")),
                });
            }
            rows.push((key, r.i64()?));
        }
        if r.at != bytes.len() {
            return Err(format!("{} trailing bytes after {n} rows", bytes.len() - r.at));
        }
        Ok(QueryOutput { rows })
    }

    /// Render as an ASCII table (examples / debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, sum) in &self.rows {
            for k in key {
                out.push_str(&k.render());
                out.push('\t');
            }
            out.push_str(&sum.to_string());
            out.push('\n');
        }
        out
    }
}

/// Version byte leading every serialized [`QueryOutput`].
const SERIAL_VERSION: u8 = 1;

/// Bounds-checked little-endian cursor for [`QueryOutput::from_bytes`].
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated input at byte {}", self.at))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_rows() {
        let out = QueryOutput::new(vec![(vec![Value::Int(2)], 20), (vec![Value::Int(1)], 10)]);
        assert_eq!(out.rows[0].1, 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out.checksum(), 30);
    }

    #[test]
    fn scalar_result() {
        let out = QueryOutput::scalar(42);
        assert_eq!(out.len(), 1);
        assert!(out.rows[0].0.is_empty());
        assert_eq!(out.checksum(), 42);
    }

    #[test]
    fn equality_after_normalization() {
        let a = QueryOutput::new(vec![(vec![Value::str("x")], 1), (vec![Value::str("y")], 2)]);
        let b = QueryOutput::new(vec![(vec![Value::str("y")], 2), (vec![Value::str("x")], 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn render_contains_values() {
        let out = QueryOutput::new(vec![(vec![Value::str("ASIA"), Value::Int(1997)], 5)]);
        let s = out.render();
        assert!(s.contains("ASIA") && s.contains("1997") && s.contains('5'));
    }

    #[test]
    fn bytes_round_trip() {
        for out in [
            QueryOutput::scalar(-42),
            QueryOutput::new(vec![]),
            QueryOutput::new(vec![
                (vec![Value::str("ASIA"), Value::Int(1997)], i64::MAX),
                (vec![Value::str(""), Value::Int(i64::MIN)], -1),
                (vec![Value::str("UNITED KI1"), Value::Int(0)], 0),
            ]),
        ] {
            let bytes = out.to_bytes();
            assert_eq!(QueryOutput::from_bytes(&bytes).unwrap(), out);
            // Stable: equal outputs serialize to equal bytes.
            assert_eq!(out.to_bytes(), bytes);
        }
    }

    #[test]
    fn equal_outputs_have_equal_bytes_after_normalization() {
        let a = QueryOutput::new(vec![(vec![Value::str("x")], 1), (vec![Value::str("y")], 2)]);
        let b = QueryOutput::new(vec![(vec![Value::str("y")], 2), (vec![Value::str("x")], 1)]);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn from_bytes_rejects_malformed_input() {
        let good = QueryOutput::scalar(7).to_bytes();
        // Wrong version byte.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(QueryOutput::from_bytes(&bad).unwrap_err().contains("version"));
        // Truncation anywhere in the payload.
        for cut in 0..good.len() {
            assert!(QueryOutput::from_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(QueryOutput::from_bytes(&long).unwrap_err().contains("trailing"));
        // Unknown value tag.
        let row = QueryOutput::new(vec![(vec![Value::Int(1)], 2)]).to_bytes();
        let mut bad_tag = row.clone();
        bad_tag[7] = 7; // version(1) + count(4) + arity(2) → first tag byte
        assert!(QueryOutput::from_bytes(&bad_tag).unwrap_err().contains("tag"));
    }
}
