//! # cvr-data — Star Schema Benchmark substrate
//!
//! This crate provides everything the two execution engines in this workspace
//! share about the *workload*: the SSBM star schema (Figure 1 of the paper),
//! a deterministic data generator that reproduces the value distributions of
//! the SSB `dbgen` tool (and therefore the per-query LINEORDER selectivities
//! listed in Section 3 of the paper), and a structured catalog of the
//! thirteen benchmark queries.
//!
//! Nothing in this crate knows about storage formats or execution strategies;
//! it deals in logical tables ([`table::TableData`]) and logical queries
//! ([`queries::SsbQuery`]). The row engine (`cvr-row`) and the column engine
//! (`cvr-core`) each compile these logical artifacts into their own physical
//! designs and plans.
//!
//! ## Quick start
//!
//! ```
//! use cvr_data::{gen::SsbConfig, queries};
//!
//! // ~6000 fact rows: plenty for a smoke test, fast to generate.
//! let tables = SsbConfig::with_scale(0.001).generate();
//! assert_eq!(tables.lineorder.num_rows(), 6_000);
//!
//! let q = queries::all_queries();
//! assert_eq!(q.len(), 13);
//! ```

#![warn(missing_docs)]

pub mod date;
pub mod gen;
pub mod queries;
pub mod reference;
pub mod result;
pub mod schema;
pub mod table;
pub mod value;
pub mod workload;

pub use gen::{SsbConfig, SsbTables};
pub use queries::{all_queries, QueryId, SsbQuery};
pub use result::{QueryOutput, ResultRow};
pub use schema::{star_schema, ColumnDef, StarSchema, TableSchema};
pub use table::{ColumnData, TableData};
pub use value::{DataType, Value};
pub use workload::{generate_queries, WorkloadConfig};
