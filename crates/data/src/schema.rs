//! The SSBM star schema (Figure 1 of the paper).
//!
//! A single fact table, `LINEORDER` (17 columns), references four dimension
//! tables: `CUSTOMER`, `SUPPLIER`, `PART`, and `DATE`. Dimension hierarchies
//! (region → nation → city; mfgr → category → brand1; year → yearmonth →
//! date) are what make the paper's *between-predicate rewriting* widely
//! applicable — see `cvr-core`.

use crate::value::DataType;

/// Definition of one column in a logical table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Lower-case column name, e.g. `"lo_orderdate"`.
    pub name: &'static str,
    /// Logical type.
    pub dtype: DataType,
}

/// A logical table: name plus ordered column definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, e.g. `"lineorder"`.
    pub name: &'static str,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Index of `name` within this schema, panicking on unknown columns —
    /// queries in this workspace are static, so an unknown column is a bug.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.name))
    }

    /// Like [`TableSchema::col`] but returning `None` on unknown columns.
    pub fn try_col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// The four dimension tables of the star schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// CUSTOMER, 30 000 × SF rows.
    Customer,
    /// SUPPLIER, 2 000 × SF rows.
    Supplier,
    /// PART, 200 000 × (1 + ⌊log2 SF⌋) rows.
    Part,
    /// DATE, one row per calendar day 1992–1998.
    Date,
}

impl Dim {
    /// All dimensions, in the fixed order used throughout the workspace.
    pub const ALL: [Dim; 4] = [Dim::Customer, Dim::Supplier, Dim::Part, Dim::Date];

    /// The LINEORDER foreign-key column referencing this dimension.
    pub fn fact_fk_column(self) -> &'static str {
        match self {
            Dim::Customer => "lo_custkey",
            Dim::Supplier => "lo_suppkey",
            Dim::Part => "lo_partkey",
            Dim::Date => "lo_orderdate",
        }
    }

    /// The dimension's primary-key column.
    pub fn key_column(self) -> &'static str {
        match self {
            Dim::Customer => "c_custkey",
            Dim::Supplier => "s_suppkey",
            Dim::Part => "p_partkey",
            Dim::Date => "d_datekey",
        }
    }

    /// Table name.
    pub fn table_name(self) -> &'static str {
        match self {
            Dim::Customer => "customer",
            Dim::Supplier => "supplier",
            Dim::Part => "part",
            Dim::Date => "date",
        }
    }

    /// Whether the dimension's key column is a dense `1..=n` sequence.
    ///
    /// CUSTOMER/SUPPLIER/PART keys are dense, so the invisible join's third
    /// phase can treat a foreign key as a direct array position. DATE keys
    /// are `yyyymmdd` values — *not* dense — so the paper (Section 5.4.1)
    /// performs a real join for DATE.
    pub fn dense_keys(self) -> bool {
        !matches!(self, Dim::Date)
    }
}

/// The full SSBM star schema.
#[derive(Debug, Clone)]
pub struct StarSchema {
    /// LINEORDER fact table schema (17 columns).
    pub lineorder: TableSchema,
    /// CUSTOMER dimension schema.
    pub customer: TableSchema,
    /// SUPPLIER dimension schema.
    pub supplier: TableSchema,
    /// PART dimension schema.
    pub part: TableSchema,
    /// DATE dimension schema.
    pub date: TableSchema,
}

impl StarSchema {
    /// Schema of dimension `d`.
    pub fn dim(&self, d: Dim) -> &TableSchema {
        match d {
            Dim::Customer => &self.customer,
            Dim::Supplier => &self.supplier,
            Dim::Part => &self.part,
            Dim::Date => &self.date,
        }
    }
}

fn int(name: &'static str) -> ColumnDef {
    ColumnDef { name, dtype: DataType::Int }
}

fn str_(name: &'static str) -> ColumnDef {
    ColumnDef { name, dtype: DataType::Str }
}

/// Build the SSBM star schema exactly as drawn in Figure 1 of the paper.
pub fn star_schema() -> StarSchema {
    let lineorder = TableSchema {
        name: "lineorder",
        columns: vec![
            int("lo_orderkey"),
            int("lo_linenumber"),
            int("lo_custkey"),
            int("lo_partkey"),
            int("lo_suppkey"),
            int("lo_orderdate"),
            str_("lo_ordpriority"),
            int("lo_shippriority"),
            int("lo_quantity"),
            int("lo_extendedprice"),
            int("lo_ordtotalprice"),
            int("lo_discount"),
            int("lo_revenue"),
            int("lo_supplycost"),
            int("lo_tax"),
            int("lo_commitdate"),
            str_("lo_shipmode"),
        ],
    };
    let customer = TableSchema {
        name: "customer",
        columns: vec![
            int("c_custkey"),
            str_("c_name"),
            str_("c_address"),
            str_("c_city"),
            str_("c_nation"),
            str_("c_region"),
            str_("c_phone"),
            str_("c_mktsegment"),
        ],
    };
    let supplier = TableSchema {
        name: "supplier",
        columns: vec![
            int("s_suppkey"),
            str_("s_name"),
            str_("s_address"),
            str_("s_city"),
            str_("s_nation"),
            str_("s_region"),
            str_("s_phone"),
        ],
    };
    let part = TableSchema {
        name: "part",
        columns: vec![
            int("p_partkey"),
            str_("p_name"),
            str_("p_mfgr"),
            str_("p_category"),
            str_("p_brand1"),
            str_("p_color"),
            str_("p_type"),
            int("p_size"),
            str_("p_container"),
        ],
    };
    let date = TableSchema {
        name: "date",
        columns: vec![
            int("d_datekey"),
            str_("d_date"),
            str_("d_dayofweek"),
            str_("d_month"),
            int("d_year"),
            int("d_yearmonthnum"),
            str_("d_yearmonth"),
            int("d_daynuminweek"),
            int("d_daynuminmonth"),
            int("d_daynuminyear"),
            int("d_monthnuminyear"),
            int("d_weeknuminyear"),
            str_("d_sellingseason"),
            int("d_lastdayinweekfl"),
            int("d_lastdayinmonthfl"),
            int("d_holidayfl"),
            int("d_weekdayfl"),
        ],
    };
    StarSchema { lineorder, customer, supplier, part, date }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineorder_has_17_columns() {
        assert_eq!(star_schema().lineorder.arity(), 17);
    }

    #[test]
    fn date_has_17_columns() {
        // "9 additional attributes" beyond the 8 drawn in Figure 1.
        assert_eq!(star_schema().date.arity(), 17);
    }

    #[test]
    fn col_lookup() {
        let s = star_schema();
        assert_eq!(s.lineorder.col("lo_orderkey"), 0);
        assert_eq!(s.lineorder.col("lo_shipmode"), 16);
        assert_eq!(s.customer.col("c_region"), 5);
        assert!(s.part.try_col("nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn col_lookup_panics_on_unknown() {
        star_schema().supplier.col("s_nope");
    }

    #[test]
    fn dim_metadata() {
        assert_eq!(Dim::Customer.fact_fk_column(), "lo_custkey");
        assert_eq!(Dim::Date.key_column(), "d_datekey");
        assert!(Dim::Part.dense_keys());
        assert!(!Dim::Date.dense_keys());
        let s = star_schema();
        for d in Dim::ALL {
            // Every dimension key column exists in its schema.
            s.dim(d).col(d.key_column());
            // Every FK column exists in the fact schema.
            s.lineorder.col(d.fact_fk_column());
        }
    }
}
