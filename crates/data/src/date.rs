//! A tiny proleptic-Gregorian calendar, enough to build the SSBM DATE table.
//!
//! The DATE dimension spans 1992-01-01 .. 1998-12-31 (the paper quotes
//! `365 × 7` rows; the real calendar has 2557 days because 1992 and 1996 are
//! leap years — the one-row-in-a-thousand difference is irrelevant to every
//! experiment). Date keys use the SSB `yyyymmdd` integer format, which is
//! *not* a dense `1..n` sequence — a property the paper leans on when
//! describing why the invisible join's third phase must fall back to a real
//! join for the DATE table.

/// First year covered by the DATE dimension.
pub const FIRST_YEAR: i64 = 1992;
/// Last year covered by the DATE dimension.
pub const LAST_YEAR: i64 = 1998;

/// Day-level calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CalDate {
    /// Four-digit year.
    pub year: i64,
    /// Month, 1..=12.
    pub month: i64,
    /// Day of month, 1..=31.
    pub day: i64,
}

/// True when `year` is a Gregorian leap year.
pub fn is_leap_year(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i64, month: i64) -> i64 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Number of days in `year`.
pub fn days_in_year(year: i64) -> i64 {
    if is_leap_year(year) {
        366
    } else {
        365
    }
}

impl CalDate {
    /// SSB-style integer date key, `yyyymmdd`.
    pub fn datekey(self) -> i64 {
        self.year * 10_000 + self.month * 100 + self.day
    }

    /// One-based ordinal of this date within its year.
    pub fn day_of_year(self) -> i64 {
        (1..self.month).map(|m| days_in_month(self.year, m)).sum::<i64>() + self.day
    }

    /// Days since 1992-01-01 (the epoch of the DATE dimension), zero-based.
    pub fn days_since_epoch(self) -> i64 {
        (FIRST_YEAR..self.year).map(days_in_year).sum::<i64>() + self.day_of_year() - 1
    }

    /// Day of week, 1 = Monday .. 7 = Sunday (1992-01-01 was a Wednesday).
    pub fn day_of_week(self) -> i64 {
        // 1992-01-01 => Wednesday => 3.
        (self.days_since_epoch() + 2) % 7 + 1
    }

    /// ISO-ish week number within the year, 1..=53 (simple `day_of_year / 7`
    /// bucketing, which is what SSB's `dbgen` does).
    pub fn week_of_year(self) -> i64 {
        (self.day_of_year() - 1) / 7 + 1
    }

    /// Advance by `n` days, clamped to the end of the DATE dimension range.
    pub fn plus_days_clamped(self, n: i64) -> CalDate {
        let mut d = self;
        let mut left = n;
        while left > 0 {
            let dim = days_in_month(d.year, d.month);
            if d.day + left <= dim {
                d.day += left;
                return d;
            }
            left -= dim - d.day + 1;
            d.day = 1;
            d.month += 1;
            if d.month > 12 {
                d.month = 1;
                d.year += 1;
                if d.year > LAST_YEAR {
                    return CalDate { year: LAST_YEAR, month: 12, day: 31 };
                }
            }
        }
        d
    }
}

/// Every date from 1992-01-01 through 1998-12-31, in order.
pub fn all_dates() -> Vec<CalDate> {
    let mut out = Vec::with_capacity(2557);
    for year in FIRST_YEAR..=LAST_YEAR {
        for month in 1..=12 {
            for day in 1..=days_in_month(year, month) {
                out.push(CalDate { year, month, day });
            }
        }
    }
    out
}

/// English month name for `month` (1..=12), as used by SSB's `yearmonth`
/// column ("Dec1997").
pub fn month_name(month: i64) -> &'static str {
    const NAMES: [&str; 12] =
        ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
    NAMES[(month - 1) as usize]
}

/// Full day-of-week name for [`CalDate::day_of_week`] output (1..=7).
pub fn weekday_name(dow: i64) -> &'static str {
    const NAMES: [&str; 7] =
        ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"];
    NAMES[(dow - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years_in_range() {
        assert!(is_leap_year(1992));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1993));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
    }

    #[test]
    fn calendar_has_2557_days() {
        let dates = all_dates();
        assert_eq!(dates.len(), 2557); // 7*365 + 2 leap days
        assert_eq!(dates[0], CalDate { year: 1992, month: 1, day: 1 });
        assert_eq!(*dates.last().unwrap(), CalDate { year: 1998, month: 12, day: 31 });
    }

    #[test]
    fn datekeys_strictly_increasing() {
        let dates = all_dates();
        for w in dates.windows(2) {
            assert!(w[0].datekey() < w[1].datekey());
        }
    }

    #[test]
    fn day_of_week_anchors() {
        // 1992-01-01 was a Wednesday; 1998-12-31 was a Thursday.
        assert_eq!(CalDate { year: 1992, month: 1, day: 1 }.day_of_week(), 3);
        assert_eq!(CalDate { year: 1998, month: 12, day: 31 }.day_of_week(), 4);
    }

    #[test]
    fn day_of_year_boundaries() {
        assert_eq!(CalDate { year: 1993, month: 1, day: 1 }.day_of_year(), 1);
        assert_eq!(CalDate { year: 1993, month: 12, day: 31 }.day_of_year(), 365);
        assert_eq!(CalDate { year: 1992, month: 12, day: 31 }.day_of_year(), 366);
    }

    #[test]
    fn plus_days_clamps_at_range_end() {
        let d = CalDate { year: 1998, month: 12, day: 20 };
        assert_eq!(d.plus_days_clamped(5), CalDate { year: 1998, month: 12, day: 25 });
        assert_eq!(d.plus_days_clamped(50), CalDate { year: 1998, month: 12, day: 31 });
    }

    #[test]
    fn plus_days_crosses_month_and_year() {
        let d = CalDate { year: 1992, month: 12, day: 30 };
        assert_eq!(d.plus_days_clamped(3), CalDate { year: 1993, month: 1, day: 2 });
        let feb = CalDate { year: 1992, month: 2, day: 28 };
        assert_eq!(feb.plus_days_clamped(2), CalDate { year: 1992, month: 3, day: 1 });
    }

    #[test]
    fn week_of_year_ranges() {
        assert_eq!(CalDate { year: 1994, month: 1, day: 1 }.week_of_year(), 1);
        assert_eq!(CalDate { year: 1994, month: 1, day: 7 }.week_of_year(), 1);
        assert_eq!(CalDate { year: 1994, month: 1, day: 8 }.week_of_year(), 2);
        assert!(CalDate { year: 1994, month: 12, day: 31 }.week_of_year() <= 53);
    }
}
