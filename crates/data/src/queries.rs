//! The thirteen SSBM queries (Section 3 of the paper) as structured
//! descriptors.
//!
//! Both engines compile these descriptors instead of parsing SQL: the study
//! is about *executors and storage layouts*, not parsers, and the paper
//! itself hand-built plans ("we were required to rewrite all of our queries
//! ... and had to make extensive use of optimizer hints"). Each descriptor
//! carries the dimension predicates, fact-table predicates, group-by columns,
//! aggregate expression, and the LINEORDER selectivity quoted in the paper,
//! which the `selectivity` experiment verifies against generated data.

use crate::schema::Dim;
use crate::value::Value;

/// Identifier of a benchmark query: flight 1..=4, query 1..=4 within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId {
    /// Flight number, 1..=4.
    pub flight: u8,
    /// Query number within the flight, 1..=4.
    pub number: u8,
}

impl QueryId {
    /// `QueryId { flight, number }` shorthand.
    pub const fn new(flight: u8, number: u8) -> Self {
        QueryId { flight, number }
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}.{}", self.flight, self.number)
    }
}

/// A scalar comparison predicate over a single column.
///
/// This tiny algebra covers every predicate in the SSBM. `Between` bounds are
/// inclusive, as in SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `col = value`.
    Eq(Value),
    /// `value_lo <= col <= value_hi`.
    Between(Value, Value),
    /// `col < value` (strict).
    Lt(Value),
    /// `col IN (values)`.
    InSet(Vec<Value>),
}

impl Pred {
    /// Evaluate against an integer (column must be an int column).
    pub fn matches_int(&self, v: i64) -> bool {
        match self {
            Pred::Eq(x) => v == x.as_int(),
            Pred::Between(lo, hi) => v >= lo.as_int() && v <= hi.as_int(),
            Pred::Lt(x) => v < x.as_int(),
            Pred::InSet(xs) => xs.iter().any(|x| x.as_int() == v),
        }
    }

    /// Evaluate against a string (column must be a string column).
    pub fn matches_str(&self, v: &str) -> bool {
        match self {
            Pred::Eq(x) => v == x.as_str(),
            Pred::Between(lo, hi) => v >= lo.as_str() && v <= hi.as_str(),
            Pred::Lt(x) => v < x.as_str(),
            Pred::InSet(xs) => xs.iter().any(|x| x.as_str() == v),
        }
    }

    /// Evaluate against a [`Value`].
    pub fn matches(&self, v: &Value) -> bool {
        match v {
            Value::Int(i) => self.matches_int(*i),
            Value::Str(s) => self.matches_str(s),
        }
    }
}

/// A predicate on one column of one dimension table.
#[derive(Debug, Clone, PartialEq)]
pub struct DimPredicate {
    /// Which dimension table.
    pub dim: Dim,
    /// Column name within the dimension, e.g. `"c_region"`.
    pub column: &'static str,
    /// The predicate.
    pub pred: Pred,
}

/// A predicate on a LINEORDER measure column (flight 1 only).
#[derive(Debug, Clone, PartialEq)]
pub struct FactPredicate {
    /// Fact column name, e.g. `"lo_discount"`.
    pub column: &'static str,
    /// The predicate.
    pub pred: Pred,
}

/// A group-by column: either a dimension attribute or (never in SSBM, but
/// supported) a fact column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupColumn {
    /// Dimension the attribute lives in.
    pub dim: Dim,
    /// Column name within that dimension.
    pub column: &'static str,
}

/// The aggregate computed by a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggExpr {
    /// `SUM(lo_extendedprice * lo_discount)` — flight 1's "revenue gain".
    SumExtendedPriceTimesDiscount,
    /// `SUM(lo_revenue)` — flights 2 and 3.
    SumRevenue,
    /// `SUM(lo_revenue - lo_supplycost)` — flight 4's "profit".
    SumRevenueMinusSupplyCost,
}

impl AggExpr {
    /// The fact columns this aggregate reads.
    pub fn fact_columns(self) -> &'static [&'static str] {
        match self {
            AggExpr::SumExtendedPriceTimesDiscount => &["lo_extendedprice", "lo_discount"],
            AggExpr::SumRevenue => &["lo_revenue"],
            AggExpr::SumRevenueMinusSupplyCost => &["lo_revenue", "lo_supplycost"],
        }
    }

    /// Evaluate the aggregate's per-row term.
    pub fn term(self, inputs: &[i64]) -> i64 {
        match self {
            AggExpr::SumExtendedPriceTimesDiscount => inputs[0] * inputs[1],
            AggExpr::SumRevenue => inputs[0],
            AggExpr::SumRevenueMinusSupplyCost => inputs[0] - inputs[1],
        }
    }
}

/// One SSBM query.
#[derive(Debug, Clone)]
pub struct SsbQuery {
    /// Query id (flight, number).
    pub id: QueryId,
    /// Predicates on dimension tables (joined through fact FKs).
    pub dim_predicates: Vec<DimPredicate>,
    /// Predicates directly on fact columns (flight 1 only).
    pub fact_predicates: Vec<FactPredicate>,
    /// Group-by columns (empty ⇒ a single scalar aggregate).
    pub group_by: Vec<GroupColumn>,
    /// The aggregate.
    pub aggregate: AggExpr,
    /// LINEORDER selectivity quoted in Section 3 of the paper.
    pub paper_selectivity: f64,
}

impl SsbQuery {
    /// Dimensions restricted by this query.
    pub fn restricted_dims(&self) -> Vec<Dim> {
        let mut v: Vec<Dim> = self.dim_predicates.iter().map(|p| p.dim).collect();
        v.dedup();
        v
    }

    /// Dimensions this query touches at all (predicates or group-by).
    pub fn touched_dims(&self) -> Vec<Dim> {
        let mut v = Vec::new();
        for d in Dim::ALL {
            let used = self.dim_predicates.iter().any(|p| p.dim == d)
                || self.group_by.iter().any(|g| g.dim == d);
            if used {
                v.push(d);
            }
        }
        v
    }

    /// All fact-table columns this query reads (FKs for touched dims, fact
    /// predicate columns, aggregate inputs). Order: FKs, predicates, measures.
    pub fn fact_columns(&self) -> Vec<&'static str> {
        let mut cols: Vec<&'static str> =
            self.touched_dims().iter().map(|d| d.fact_fk_column()).collect();
        for p in &self.fact_predicates {
            if !cols.contains(&p.column) {
                cols.push(p.column);
            }
        }
        for c in self.aggregate.fact_columns() {
            if !cols.contains(c) {
                cols.push(c);
            }
        }
        cols
    }

    /// Predicates of this query restricted to dimension `d`.
    pub fn dim_predicates_on(&self, d: Dim) -> Vec<&DimPredicate> {
        self.dim_predicates.iter().filter(|p| p.dim == d).collect()
    }

    /// A copy of this query with its fact predicates permuted by `order`
    /// (`order[k]` is the index of the predicate to evaluate `k`-th).
    ///
    /// Predicate conjunctions commute, so the result set is unchanged; only
    /// the *evaluation order* the engines follow differs. This is the hook
    /// the cost-based planner uses to apply its chosen fact-predicate order
    /// through the unchanged engine entry points.
    pub fn with_fact_order(&self, order: &[usize]) -> SsbQuery {
        assert_eq!(order.len(), self.fact_predicates.len(), "order must be a permutation");
        let mut seen = vec![false; order.len()];
        let mut q = self.clone();
        q.fact_predicates = order
            .iter()
            .map(|&i| {
                assert!(!std::mem::replace(&mut seen[i], true), "order must be a permutation");
                self.fact_predicates[i].clone()
            })
            .collect();
        q
    }
}

fn int(v: i64) -> Value {
    Value::Int(v)
}

fn s(v: &str) -> Value {
    Value::str(v)
}

/// Build the full 13-query SSBM workload.
pub fn all_queries() -> Vec<SsbQuery> {
    use AggExpr::*;
    use Dim::*;
    let dp = |dim, column, pred| DimPredicate { dim, column, pred };
    let fp = |column, pred| FactPredicate { column, pred };
    let g = |dim, column| GroupColumn { dim, column };

    vec![
        // ---- Flight 1: restriction on DATE + two fact predicates; scalar
        // revenue-gain aggregate. ----
        SsbQuery {
            id: QueryId::new(1, 1),
            dim_predicates: vec![dp(Date, "d_year", Pred::Eq(int(1993)))],
            fact_predicates: vec![
                fp("lo_discount", Pred::Between(int(1), int(3))),
                fp("lo_quantity", Pred::Lt(int(25))),
            ],
            group_by: vec![],
            aggregate: SumExtendedPriceTimesDiscount,
            paper_selectivity: 1.9e-2,
        },
        SsbQuery {
            id: QueryId::new(1, 2),
            dim_predicates: vec![dp(Date, "d_yearmonthnum", Pred::Eq(int(199401)))],
            fact_predicates: vec![
                fp("lo_discount", Pred::Between(int(4), int(6))),
                fp("lo_quantity", Pred::Between(int(26), int(35))),
            ],
            group_by: vec![],
            aggregate: SumExtendedPriceTimesDiscount,
            paper_selectivity: 6.5e-4,
        },
        SsbQuery {
            id: QueryId::new(1, 3),
            dim_predicates: vec![
                dp(Date, "d_weeknuminyear", Pred::Eq(int(6))),
                dp(Date, "d_year", Pred::Eq(int(1994))),
            ],
            fact_predicates: vec![
                fp("lo_discount", Pred::Between(int(5), int(7))),
                fp("lo_quantity", Pred::Between(int(36), int(40))),
            ],
            group_by: vec![],
            aggregate: SumExtendedPriceTimesDiscount,
            paper_selectivity: 7.5e-5,
        },
        // ---- Flight 2: PART category/brand × SUPPLIER region; revenue by
        // (year, brand). ----
        SsbQuery {
            id: QueryId::new(2, 1),
            dim_predicates: vec![
                dp(Part, "p_category", Pred::Eq(s("MFGR#12"))),
                dp(Supplier, "s_region", Pred::Eq(s("AMERICA"))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Date, "d_year"), g(Part, "p_brand1")],
            aggregate: SumRevenue,
            paper_selectivity: 8.0e-3,
        },
        SsbQuery {
            id: QueryId::new(2, 2),
            dim_predicates: vec![
                dp(Part, "p_brand1", Pred::Between(s("MFGR#2221"), s("MFGR#2228"))),
                dp(Supplier, "s_region", Pred::Eq(s("ASIA"))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Date, "d_year"), g(Part, "p_brand1")],
            aggregate: SumRevenue,
            paper_selectivity: 1.6e-3,
        },
        SsbQuery {
            id: QueryId::new(2, 3),
            dim_predicates: vec![
                dp(Part, "p_brand1", Pred::Eq(s("MFGR#2239"))),
                dp(Supplier, "s_region", Pred::Eq(s("EUROPE"))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Date, "d_year"), g(Part, "p_brand1")],
            aggregate: SumRevenue,
            paper_selectivity: 2.0e-4,
        },
        // ---- Flight 3: CUSTOMER × SUPPLIER geography over a time window;
        // revenue by (c-geo, s-geo, year). ----
        SsbQuery {
            id: QueryId::new(3, 1),
            dim_predicates: vec![
                dp(Customer, "c_region", Pred::Eq(s("ASIA"))),
                dp(Supplier, "s_region", Pred::Eq(s("ASIA"))),
                dp(Date, "d_year", Pred::Between(int(1992), int(1997))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Customer, "c_nation"), g(Supplier, "s_nation"), g(Date, "d_year")],
            aggregate: SumRevenue,
            paper_selectivity: 3.4e-2,
        },
        SsbQuery {
            id: QueryId::new(3, 2),
            dim_predicates: vec![
                dp(Customer, "c_nation", Pred::Eq(s("UNITED STATES"))),
                dp(Supplier, "s_nation", Pred::Eq(s("UNITED STATES"))),
                dp(Date, "d_year", Pred::Between(int(1992), int(1997))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Customer, "c_city"), g(Supplier, "s_city"), g(Date, "d_year")],
            aggregate: SumRevenue,
            paper_selectivity: 1.4e-3,
        },
        SsbQuery {
            id: QueryId::new(3, 3),
            dim_predicates: vec![
                dp(Customer, "c_city", Pred::InSet(vec![s("UNITED KI1"), s("UNITED KI5")])),
                dp(Supplier, "s_city", Pred::InSet(vec![s("UNITED KI1"), s("UNITED KI5")])),
                dp(Date, "d_year", Pred::Between(int(1992), int(1997))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Customer, "c_city"), g(Supplier, "s_city"), g(Date, "d_year")],
            aggregate: SumRevenue,
            paper_selectivity: 5.5e-5,
        },
        SsbQuery {
            id: QueryId::new(3, 4),
            dim_predicates: vec![
                dp(Customer, "c_city", Pred::InSet(vec![s("UNITED KI1"), s("UNITED KI5")])),
                dp(Supplier, "s_city", Pred::InSet(vec![s("UNITED KI1"), s("UNITED KI5")])),
                dp(Date, "d_yearmonth", Pred::Eq(s("Dec1997"))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Customer, "c_city"), g(Supplier, "s_city"), g(Date, "d_year")],
            aggregate: SumRevenue,
            paper_selectivity: 7.6e-7,
        },
        // ---- Flight 4: profit queries over three dimensions. ----
        SsbQuery {
            id: QueryId::new(4, 1),
            dim_predicates: vec![
                dp(Customer, "c_region", Pred::Eq(s("AMERICA"))),
                dp(Supplier, "s_region", Pred::Eq(s("AMERICA"))),
                dp(Part, "p_mfgr", Pred::InSet(vec![s("MFGR#1"), s("MFGR#2")])),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Date, "d_year"), g(Customer, "c_nation")],
            aggregate: SumRevenueMinusSupplyCost,
            paper_selectivity: 1.6e-2,
        },
        SsbQuery {
            id: QueryId::new(4, 2),
            dim_predicates: vec![
                dp(Customer, "c_region", Pred::Eq(s("AMERICA"))),
                dp(Supplier, "s_region", Pred::Eq(s("AMERICA"))),
                dp(Date, "d_year", Pred::Between(int(1997), int(1998))),
                dp(Part, "p_mfgr", Pred::InSet(vec![s("MFGR#1"), s("MFGR#2")])),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Date, "d_year"), g(Supplier, "s_nation"), g(Part, "p_category")],
            aggregate: SumRevenueMinusSupplyCost,
            paper_selectivity: 4.5e-3,
        },
        SsbQuery {
            id: QueryId::new(4, 3),
            dim_predicates: vec![
                dp(Customer, "c_region", Pred::Eq(s("AMERICA"))),
                dp(Supplier, "s_nation", Pred::Eq(s("UNITED STATES"))),
                dp(Date, "d_year", Pred::Between(int(1997), int(1998))),
                dp(Part, "p_category", Pred::Eq(s("MFGR#14"))),
            ],
            fact_predicates: vec![],
            group_by: vec![g(Date, "d_year"), g(Supplier, "s_city"), g(Part, "p_brand1")],
            aggregate: SumRevenueMinusSupplyCost,
            paper_selectivity: 9.1e-5,
        },
    ]
}

/// Find one query by id, panicking when absent.
pub fn query(flight: u8, number: u8) -> SsbQuery {
    all_queries()
        .into_iter()
        .find(|q| q.id == QueryId::new(flight, number))
        .unwrap_or_else(|| panic!("no query Q{flight}.{number}"))
}

/// The query flights, for per-flight reporting: `flights()[0]` is flight 1.
pub fn flights() -> Vec<Vec<SsbQuery>> {
    let mut out = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for q in all_queries() {
        out[(q.id.flight - 1) as usize].push(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::star_schema;

    #[test]
    fn thirteen_queries_in_four_flights() {
        let f = flights();
        assert_eq!(f.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 4, 3]);
    }

    #[test]
    fn query_lookup() {
        assert_eq!(query(3, 1).id.to_string(), "Q3.1");
    }

    #[test]
    #[should_panic(expected = "no query")]
    fn query_lookup_panics() {
        query(5, 1);
    }

    #[test]
    fn all_referenced_columns_exist() {
        let schema = star_schema();
        for q in all_queries() {
            for p in &q.dim_predicates {
                schema.dim(p.dim).col(p.column);
            }
            for p in &q.fact_predicates {
                schema.lineorder.col(p.column);
            }
            for g in &q.group_by {
                schema.dim(g.dim).col(g.column);
            }
            for c in q.fact_columns() {
                schema.lineorder.col(c);
            }
        }
    }

    #[test]
    fn flight1_reads_minimal_fact_columns() {
        let q = query(1, 1);
        let cols = q.fact_columns();
        // orderdate FK + two predicate columns + two aggregate inputs,
        // with lo_discount shared between predicate and aggregate.
        assert_eq!(cols, vec!["lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice"]);
    }

    #[test]
    fn q31_touches_three_dims() {
        let q = query(3, 1);
        assert_eq!(q.touched_dims().len(), 3);
        assert_eq!(q.restricted_dims().len(), 3);
    }

    #[test]
    fn q21_touches_date_via_groupby_only() {
        let q = query(2, 1);
        // DATE is grouped but not restricted.
        assert_eq!(q.restricted_dims().len(), 2);
        assert_eq!(q.touched_dims().len(), 3);
    }

    #[test]
    fn pred_eval() {
        assert!(Pred::Eq(Value::Int(5)).matches_int(5));
        assert!(!Pred::Eq(Value::Int(5)).matches_int(6));
        assert!(Pred::Between(Value::Int(1), Value::Int(3)).matches_int(3));
        assert!(!Pred::Between(Value::Int(1), Value::Int(3)).matches_int(4));
        assert!(Pred::Lt(Value::Int(25)).matches_int(24));
        assert!(!Pred::Lt(Value::Int(25)).matches_int(25));
        assert!(Pred::InSet(vec![Value::str("a"), Value::str("b")]).matches_str("b"));
        assert!(Pred::Eq(Value::str("ASIA")).matches(&Value::str("ASIA")));
        assert!(Pred::Between(Value::str("MFGR#2221"), Value::str("MFGR#2228"))
            .matches_str("MFGR#2225"));
    }

    #[test]
    fn aggregate_terms() {
        assert_eq!(AggExpr::SumRevenue.term(&[10]), 10);
        assert_eq!(AggExpr::SumExtendedPriceTimesDiscount.term(&[10, 3]), 30);
        assert_eq!(AggExpr::SumRevenueMinusSupplyCost.term(&[10, 4]), 6);
    }

    #[test]
    fn with_fact_order_permutes_only_fact_predicates() {
        let q = query(1, 1);
        let r = q.with_fact_order(&[1, 0]);
        assert_eq!(r.fact_predicates[0], q.fact_predicates[1]);
        assert_eq!(r.fact_predicates[1], q.fact_predicates[0]);
        assert_eq!(r.dim_predicates, q.dim_predicates);
        assert_eq!(r.id, q.id);
        // Identity order round-trips.
        assert_eq!(q.with_fact_order(&[0, 1]).fact_predicates, q.fact_predicates);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn with_fact_order_rejects_duplicates() {
        query(1, 1).with_fact_order(&[0, 0]);
    }

    #[test]
    fn paper_selectivities_recorded() {
        let sels: Vec<f64> = all_queries().iter().map(|q| q.paper_selectivity).collect();
        assert_eq!(sels.len(), 13);
        assert!(sels.iter().all(|&s| s > 0.0 && s < 1.0));
        // Spot-check the two extremes quoted in Section 3.
        assert_eq!(query(1, 1).paper_selectivity, 1.9e-2);
        assert_eq!(query(3, 4).paper_selectivity, 7.6e-7);
    }
}
