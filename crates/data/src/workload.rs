//! Seeded ad-hoc query generator over the [`crate::queries`] descriptor
//! algebra.
//!
//! The thirteen SSBM queries cover four plan shapes, but a planner that is
//! only ever exercised on thirteen hand-picked points is not a planner —
//! it is a lookup table. This module draws *random* [`SsbQuery`]
//! descriptors from the SSB value domains (regions, nations, cities,
//! manufacturer hierarchies, the 1992–1998 calendar, the `lo_quantity` /
//! `lo_discount` / `lo_tax` measure ranges), so generated queries are
//! always reference-evaluable: every predicate column exists, every value
//! is drawn from the generator's own domain constants, and the group-by
//! attributes stay low-cardinality enough to aggregate.
//!
//! Generated queries carry `QueryId { flight: GENERATED_FLIGHT, .. }` so
//! downstream code (materialized views are built per *paper* flight) can
//! tell them apart from the paper set, and `paper_selectivity` holds the
//! *analytic* selectivity implied by the value domains — the same uniform
//! arithmetic that produces the paper's Section 3 numbers.

use crate::date::month_name;
use crate::gen::rng::SplitMix64;
use crate::gen::{MKT_SEGMENTS, NATIONS, REGIONS};
use crate::queries::{AggExpr, DimPredicate, FactPredicate, GroupColumn, Pred, QueryId, SsbQuery};
use crate::schema::Dim;
use crate::value::Value;

/// Flight number marking generated (non-paper) queries.
pub const GENERATED_FLIGHT: u8 = 9;

/// Configuration for the ad-hoc workload generator.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// PRNG seed: equal seeds generate identical workloads.
    pub seed: u64,
    /// Number of queries to draw (at most 255, the `QueryId` number space).
    pub count: usize,
}

impl WorkloadConfig {
    /// `count` queries at the default seed.
    pub fn with_count(count: usize) -> WorkloadConfig {
        WorkloadConfig { seed: 0xAD_0C, count }
    }

    /// Generate the workload.
    pub fn generate(self) -> Vec<SsbQuery> {
        generate_queries(self)
    }
}

/// One drawn dimension predicate plus its analytic selectivity.
struct DrawnPred {
    column: &'static str,
    pred: Pred,
    sel: f64,
}

fn s(v: &str) -> Value {
    Value::str(v)
}

fn int(v: i64) -> Value {
    Value::Int(v)
}

/// A uniform nation (flattened across regions).
fn pick_nation(rng: &mut SplitMix64) -> &'static str {
    NATIONS[rng.index(5)][rng.index(5)]
}

/// A city name in dbgen's scheme: nation padded to 9 chars + digit.
fn pick_city(rng: &mut SplitMix64) -> String {
    crate::gen::city_name(pick_nation(rng), rng.int_range(0, 9))
}

/// Draw one predicate for a geography dimension (CUSTOMER or SUPPLIER).
fn draw_geo_pred(rng: &mut SplitMix64, prefix: char, customer: bool) -> DrawnPred {
    let col = |name: &'static str| name;
    match rng.index(if customer { 8 } else { 7 }) {
        0..=2 => DrawnPred {
            column: if prefix == 'c' { col("c_region") } else { col("s_region") },
            pred: Pred::Eq(s(REGIONS[rng.index(5)])),
            sel: 1.0 / 5.0,
        },
        3 | 4 => DrawnPred {
            column: if prefix == 'c' { col("c_nation") } else { col("s_nation") },
            pred: Pred::Eq(s(pick_nation(rng))),
            sel: 1.0 / 25.0,
        },
        5 | 6 => {
            let k = rng.int_range(1, 3) as usize;
            let cities: Vec<Value> = (0..k).map(|_| Value::str(pick_city(rng))).collect();
            DrawnPred {
                column: if prefix == 'c' { col("c_city") } else { col("s_city") },
                pred: Pred::InSet(cities),
                sel: k as f64 / 250.0,
            }
        }
        _ => DrawnPred {
            column: col("c_mktsegment"),
            pred: Pred::Eq(s(MKT_SEGMENTS[rng.index(5)])),
            sel: 1.0 / 5.0,
        },
    }
}

/// Draw one predicate on the PART hierarchy.
fn draw_part_pred(rng: &mut SplitMix64) -> DrawnPred {
    let m = rng.int_range(1, 5);
    let c = rng.int_range(1, 5);
    match rng.index(5) {
        0 => {
            DrawnPred { column: "p_mfgr", pred: Pred::Eq(s(&format!("MFGR#{m}"))), sel: 1.0 / 5.0 }
        }
        1 => DrawnPred {
            column: "p_mfgr",
            pred: Pred::InSet(vec![
                s(&format!("MFGR#{}", m.min(4))),
                s(&format!("MFGR#{}", m.min(4) + 1)),
            ]),
            sel: 2.0 / 5.0,
        },
        2 => DrawnPred {
            column: "p_category",
            pred: Pred::Eq(s(&format!("MFGR#{m}{c}"))),
            sel: 1.0 / 25.0,
        },
        3 => {
            let b = rng.int_range(1, 40);
            DrawnPred {
                column: "p_brand1",
                pred: Pred::Eq(s(&format!("MFGR#{m}{c}{b:02}"))),
                sel: 1.0 / 1000.0,
            }
        }
        _ => {
            let lo = rng.int_range(1, 32);
            let hi = (lo + rng.int_range(1, 8)).min(40);
            DrawnPred {
                column: "p_brand1",
                pred: Pred::Between(
                    s(&format!("MFGR#{m}{c}{lo:02}")),
                    s(&format!("MFGR#{m}{c}{hi:02}")),
                ),
                sel: (hi - lo + 1) as f64 / 1000.0,
            }
        }
    }
}

/// Draw one predicate on the DATE dimension.
fn draw_date_pred(rng: &mut SplitMix64) -> DrawnPred {
    match rng.index(6) {
        0 | 1 => {
            let y = rng.int_range(1992, 1998);
            DrawnPred { column: "d_year", pred: Pred::Eq(int(y)), sel: 1.0 / 7.0 }
        }
        2 => {
            let y1 = rng.int_range(1992, 1997);
            let y2 = rng.int_range(y1, 1998);
            DrawnPred {
                column: "d_year",
                pred: Pred::Between(int(y1), int(y2)),
                sel: (y2 - y1 + 1) as f64 / 7.0,
            }
        }
        3 => {
            let y = rng.int_range(1992, 1998);
            let mth = rng.int_range(1, 12);
            DrawnPred {
                column: "d_yearmonthnum",
                pred: Pred::Eq(int(y * 100 + mth)),
                sel: 1.0 / 84.0,
            }
        }
        4 => {
            let y = rng.int_range(1992, 1998);
            let mth = rng.int_range(1, 12);
            DrawnPred {
                column: "d_yearmonth",
                pred: Pred::Eq(s(&format!("{}{}", month_name(mth), y))),
                sel: 1.0 / 84.0,
            }
        }
        _ => {
            let mth = rng.int_range(1, 12);
            DrawnPred { column: "d_monthnuminyear", pred: Pred::Eq(int(mth)), sel: 1.0 / 12.0 }
        }
    }
}

/// Draw one fact-table measure predicate (always an int column, the shape
/// flight 1 uses).
fn draw_fact_pred(rng: &mut SplitMix64) -> (FactPredicate, f64) {
    match rng.index(4) {
        0 => {
            let k = rng.int_range(10, 45);
            (FactPredicate { column: "lo_quantity", pred: Pred::Lt(int(k)) }, (k - 1) as f64 / 50.0)
        }
        1 => {
            let lo = rng.int_range(1, 40);
            let hi = (lo + rng.int_range(0, 12)).min(50);
            (
                FactPredicate { column: "lo_quantity", pred: Pred::Between(int(lo), int(hi)) },
                (hi - lo + 1) as f64 / 50.0,
            )
        }
        2 => {
            let lo = rng.int_range(0, 8);
            let hi = (lo + rng.int_range(0, 4)).min(10);
            (
                FactPredicate { column: "lo_discount", pred: Pred::Between(int(lo), int(hi)) },
                (hi - lo + 1) as f64 / 11.0,
            )
        }
        _ => {
            let lo = rng.int_range(0, 6);
            let hi = (lo + rng.int_range(0, 3)).min(8);
            (
                FactPredicate { column: "lo_tax", pred: Pred::Between(int(lo), int(hi)) },
                (hi - lo + 1) as f64 / 9.0,
            )
        }
    }
}

/// Group-by candidates: (dim, column) pairs with low enough cardinality to
/// aggregate sensibly.
const GROUP_CANDIDATES: [(Dim, &str); 12] = [
    (Dim::Customer, "c_region"),
    (Dim::Customer, "c_nation"),
    (Dim::Customer, "c_city"),
    (Dim::Customer, "c_mktsegment"),
    (Dim::Supplier, "s_region"),
    (Dim::Supplier, "s_nation"),
    (Dim::Supplier, "s_city"),
    (Dim::Part, "p_mfgr"),
    (Dim::Part, "p_category"),
    (Dim::Date, "d_year"),
    (Dim::Date, "d_sellingseason"),
    (Dim::Date, "d_monthnuminyear"),
];

/// Generate `cfg.count` random queries. Deterministic in `cfg`.
pub fn generate_queries(cfg: WorkloadConfig) -> Vec<SsbQuery> {
    assert!(cfg.count <= 255, "QueryId number space is u8");
    let mut rng = SplitMix64::new(cfg.seed ^ 0x0DD_B411);
    let mut out = Vec::with_capacity(cfg.count);
    for i in 0..cfg.count {
        out.push(draw_query(&mut rng, (i + 1) as u8));
    }
    out
}

fn draw_query(rng: &mut SplitMix64, number: u8) -> SsbQuery {
    let mut sel = 1.0f64;

    // Restricted dimensions: 0..=3 of the four, weighted toward 1-2.
    let n_dims = match rng.index(20) {
        0 | 1 => 0,
        2..=8 => 1,
        9..=15 => 2,
        _ => 3,
    };
    let mut dims: Vec<Dim> = Dim::ALL.to_vec();
    // Fisher-Yates prefix shuffle driven by the seeded rng.
    for k in 0..3 {
        let j = k + rng.index(4 - k);
        dims.swap(k, j);
    }
    dims.truncate(n_dims);

    let mut dim_predicates = Vec::new();
    for &d in &dims {
        let drawn = match d {
            Dim::Customer => draw_geo_pred(rng, 'c', true),
            Dim::Supplier => draw_geo_pred(rng, 's', false),
            Dim::Part => draw_part_pred(rng),
            Dim::Date => draw_date_pred(rng),
        };
        sel *= drawn.sel;
        dim_predicates.push(DimPredicate { dim: d, column: drawn.column, pred: drawn.pred });
    }

    // Fact measure predicates: 0..=2, forced to at least one when no
    // dimension is restricted (every engine plan needs *some* restriction;
    // `SuperVpDb` in particular asserts it).
    let mut n_fact = match rng.index(20) {
        0..=9 => 0,
        10..=16 => 1,
        _ => 2,
    };
    if dim_predicates.is_empty() && n_fact == 0 {
        n_fact = 1;
    }
    let mut fact_predicates: Vec<FactPredicate> = Vec::new();
    while fact_predicates.len() < n_fact {
        let (fp, fsel) = draw_fact_pred(rng);
        if fact_predicates.iter().any(|p| p.column == fp.column) {
            continue;
        }
        sel *= fsel;
        fact_predicates.push(fp);
    }

    // Group-by: 0..=3 distinct low-cardinality dimension attributes.
    let n_groups = match rng.index(20) {
        0..=4 => 0,
        5..=10 => 1,
        11..=16 => 2,
        _ => 3,
    };
    let mut group_by: Vec<GroupColumn> = Vec::new();
    while group_by.len() < n_groups {
        let (dim, column) = GROUP_CANDIDATES[rng.index(GROUP_CANDIDATES.len())];
        if group_by.iter().any(|g| g.column == column) {
            continue;
        }
        group_by.push(GroupColumn { dim, column });
    }

    let aggregate = match rng.index(3) {
        0 => AggExpr::SumExtendedPriceTimesDiscount,
        1 => AggExpr::SumRevenue,
        _ => AggExpr::SumRevenueMinusSupplyCost,
    };

    SsbQuery {
        id: QueryId::new(GENERATED_FLIGHT, number),
        dim_predicates,
        fact_predicates,
        group_by,
        aggregate,
        paper_selectivity: sel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SsbConfig;
    use crate::queries::all_queries;
    use crate::reference;
    use crate::schema::star_schema;

    #[test]
    fn deterministic_and_counted() {
        let a = WorkloadConfig { seed: 1, count: 40 }.generate();
        let b = WorkloadConfig { seed: 1, count: 40 }.generate();
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        let c = WorkloadConfig { seed: 2, count: 40 }.generate();
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn generated_ids_do_not_collide_with_paper() {
        for q in WorkloadConfig::with_count(64).generate() {
            assert_eq!(q.id.flight, GENERATED_FLIGHT);
            assert!(all_queries().iter().all(|p| p.id != q.id));
        }
    }

    #[test]
    fn every_generated_query_is_schema_valid_and_restricted() {
        let schema = star_schema();
        for q in WorkloadConfig::with_count(128).generate() {
            assert!(
                !q.dim_predicates.is_empty() || !q.fact_predicates.is_empty(),
                "query must restrict something"
            );
            for p in &q.dim_predicates {
                schema.dim(p.dim).col(p.column);
            }
            for p in &q.fact_predicates {
                schema.lineorder.col(p.column);
            }
            for g in &q.group_by {
                schema.dim(g.dim).col(g.column);
            }
            for c in q.fact_columns() {
                schema.lineorder.col(c);
            }
            assert!(q.paper_selectivity > 0.0 && q.paper_selectivity <= 1.0);
        }
    }

    #[test]
    fn generated_queries_reference_evaluate() {
        let tables = SsbConfig { sf: 0.0008, seed: 3 }.generate();
        let mut nonempty = 0usize;
        for q in WorkloadConfig::with_count(32).generate() {
            let out = reference::evaluate(&tables, &q);
            if q.group_by.is_empty() {
                assert_eq!(out.rows.len(), 1, "{} should be scalar", q.id);
            }
            for (k, _) in &out.rows {
                assert_eq!(k.len(), q.group_by.len(), "{}", q.id);
            }
            if out.rows.iter().any(|(_, v)| *v != 0) {
                nonempty += 1;
            }
        }
        // The workload must not be degenerate: a healthy share of queries
        // select actual rows even at a tiny scale factor.
        assert!(nonempty >= 8, "only {nonempty}/32 queries matched rows");
    }

    #[test]
    fn analytic_selectivity_tracks_measured() {
        let tables = SsbConfig { sf: 0.002, seed: 5 }.generate();
        let n = tables.lineorder.num_rows() as f64;
        let (mut checkable, mut close) = (0usize, 0usize);
        for q in WorkloadConfig::with_count(24).generate() {
            let measured = reference::measured_selectivity(&tables, &q);
            // The analytic number assumes the full value domain is present;
            // tiny dimension tables undersample it (250 cities over 60
            // customers), so it is an upper-bound-ish figure, checked in
            // aggregate: queries with enough expected matches mostly land
            // within 3x (mirroring reference's paper-selectivity test).
            if q.paper_selectivity * n >= 50.0 {
                checkable += 1;
                if measured <= q.paper_selectivity * 3.0 && measured >= q.paper_selectivity / 3.0 {
                    close += 1;
                }
            }
        }
        assert!(checkable >= 5, "workload too selective to check at this sf");
        assert!(close * 3 >= checkable * 2, "only {close}/{checkable} analytic estimates close");
    }
}
