//! Structured explain trees.
//!
//! [`Explain`] used to be a debug-print helper: one free-form label per
//! node. Serving plans over a wire protocol needs something sturdier — a
//! tree with **stable field names** (`op`, `detail`, `est_rows`,
//! `est_cost_seconds`, `children`) that renders identically everywhere it
//! is shown: the `--explain` flag of the CLI binaries, the `EXPLAIN`
//! payload of the server protocol, and test assertions all go through
//! [`Explain::render`] / [`Explain::to_json`] on the same value.
//!
//! The JSON encoder is hand-rolled (the build environment has no serde):
//! field names are part of the wire contract and pinned by tests.

use std::fmt::Write as _;

/// One node of an explain tree: a stable operator name, a human detail
/// string, and optional per-node estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// Stable operator name (`"probe"`, `"scan"`, `"hash-join"`, ...).
    /// Part of the wire contract: renderers and clients match on this.
    pub op: &'static str,
    /// Free-form description (column names, sizes, modes).
    pub detail: String,
    /// Estimated rows flowing out of this operator, when the model has one.
    pub est_rows: Option<u64>,
    /// Estimated modeled seconds attributable to this operator, when the
    /// model prices it as a discrete step.
    pub est_cost_seconds: Option<f64>,
    /// Sub-operators.
    pub children: Vec<Explain>,
}

impl Explain {
    /// A leaf node with no estimates.
    pub fn node(op: &'static str, detail: impl Into<String>) -> Explain {
        Explain {
            op,
            detail: detail.into(),
            est_rows: None,
            est_cost_seconds: None,
            children: Vec::new(),
        }
    }

    /// Builder: attach an estimated output cardinality.
    pub fn rows(mut self, rows: u64) -> Explain {
        self.est_rows = Some(rows);
        self
    }

    /// Builder: attach an estimated per-operator cost.
    pub fn cost(mut self, seconds: f64) -> Explain {
        self.est_cost_seconds = Some(seconds);
        self
    }

    /// Append a child node.
    pub fn push(&mut self, child: Explain) {
        self.children.push(child);
    }

    /// Indented tree rendering — the one text form of an explain tree,
    /// shared by the CLI binaries and the wire protocol's `EXPLAIN` text.
    pub fn render(&self, indent: usize) -> String {
        let mut out = format!("{}{}: {}", "  ".repeat(indent), self.op, self.detail);
        if let Some(rows) = self.est_rows {
            let _ = write!(out, " [~{rows} rows]");
        }
        if let Some(secs) = self.est_cost_seconds {
            let _ = write!(out, " [{secs:.4}s]");
        }
        out.push('\n');
        for c in &self.children {
            out.push_str(&c.render(indent + 1));
        }
        out
    }

    /// Stable JSON encoding. Field names (`op`, `detail`, `est_rows`,
    /// `est_cost_seconds`, `children`) are the wire contract; optional
    /// estimates encode as `null` when absent so the shape is fixed.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"op\": ");
        write_json_string(out, self.op);
        out.push_str(", \"detail\": ");
        write_json_string(out, &self.detail);
        match self.est_rows {
            Some(r) => {
                let _ = write!(out, ", \"est_rows\": {r}");
            }
            None => out.push_str(", \"est_rows\": null"),
        }
        match self.est_cost_seconds {
            Some(s) => {
                let _ = write!(out, ", \"est_cost_seconds\": {s:.6}");
            }
            None => out.push_str(", \"est_cost_seconds\": null"),
        }
        out.push_str(", \"children\": [");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Write `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Explain {
        let mut root = Explain::node("plan", "column tICL (invisible join)");
        root.push(Explain::node("probe", "lo_custkey (dict, 0.5 MB)").rows(1200).cost(0.002));
        root.push(Explain::node("aggregate", "2 group col(s)").rows(56));
        root
    }

    #[test]
    fn render_shows_ops_estimates_and_nesting() {
        let s = tree().render(0);
        assert!(s.contains("plan: column tICL"), "{s}");
        assert!(s.contains("  probe: lo_custkey"), "{s}");
        assert!(s.contains("[~1200 rows]"), "{s}");
        assert!(s.contains("[0.0020s]"), "{s}");
        assert!(s.contains("[~56 rows]"), "{s}");
    }

    #[test]
    fn json_has_stable_field_names() {
        let j = tree().to_json();
        for field in
            ["\"op\"", "\"detail\"", "\"est_rows\"", "\"est_cost_seconds\"", "\"children\""]
        {
            assert!(j.contains(field), "{j} missing {field}");
        }
        assert!(j.contains("\"est_rows\": 1200"), "{j}");
        assert!(j.contains("\"est_cost_seconds\": null"), "{j}");
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
