//! # cvr-plan — a statistics-driven cost-based planner
//!
//! The paper's central finding is that plan shape and physical design
//! change performance by integer factors — invisible join vs.
//! late-materialized join vs. early materialization, compressed vs. plain,
//! column engine vs. each of the row engine's physical designs. Everywhere
//! else in this workspace those choices are made *by hand*, through
//! `EngineConfig` ablation letters and `RowDesign` codes. This crate makes
//! them automatically:
//!
//! * [`stats`] builds a catalog from the real storage layer — row counts,
//!   min/max/NDV, equi-depth histograms, exact string frequency tables,
//!   RLE run counts, and the actual `encoded_bytes` of both compression
//!   variants;
//! * [`cost`] turns plans into modeled seconds with the same arithmetic
//!   the benchmark harness uses (`cpu × cpu_scale + DiskModel::io_time`),
//!   with CPU rates recalibratable from `BENCH_kernels.json`-style
//!   measurements;
//! * [`enumerate`] searches the space the engines already expose — plan
//!   shape × compression × fact-predicate order × row physical design —
//!   and returns a [`Plan`] with an explain tree and the full candidate
//!   ranking.
//!
//! ```
//! use cvr_core::ColumnEngine;
//! use cvr_data::gen::SsbConfig;
//! use cvr_plan::{Catalog, Planner};
//! use std::sync::Arc;
//!
//! let tables = Arc::new(SsbConfig::with_scale(0.001).generate());
//! let engine = ColumnEngine::new(tables);
//! let planner = Planner::new(Catalog::build(&engine));
//! let plan = planner.plan(&cvr_data::queries::query(3, 1));
//! assert!(plan.engine_config().is_some() || plan.row_design().is_some());
//! println!("{}", plan.render());
//! ```
//!
//! The `cvr-bench` `planner` binary closes the loop: it measures planner
//! *regret* — the planner's pick vs. the measured best over the whole
//! grid — across the 13 paper queries and a seeded ad-hoc workload
//! (`cvr_data::workload`), and emits `BENCH_planner.json`.

#![warn(missing_docs)]

pub mod cost;
pub mod enumerate;
pub mod explain;
pub mod key;
pub mod stats;

pub use cost::{CostBreakdown, CostParams, CpuRates};
pub use enumerate::{Candidate, PhysicalChoice, Plan, PlanShape, Planner};
pub use explain::Explain;
pub use stats::{Catalog, ColumnStats, EncodingKind, Histogram, TableStats};
