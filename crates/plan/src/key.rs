//! Canonical cache keys for the serving layer's result/intermediate cache.
//!
//! Two queries may share cached state only when *everything* that could
//! change bytes — the store contents, the query descriptor, and the plan the
//! planner chose — is identical. These helpers serialize exactly that set
//! into deterministic strings. The encoding is the `Debug` form of the
//! descriptor pieces, which is order-preserving and total over every
//! predicate/aggregate variant; it is deliberately conservative — two
//! semantically equal queries that spell their predicates differently get
//! different keys, which can only cost a cache miss, never a wrong hit.

use cvr_data::queries::SsbQuery;
use std::fmt::Write as _;

/// Key for a completed query result: everything in [`filter_key`] plus the
/// query identity, grouping, and aggregate — any of which changes the
/// output bytes.
pub fn descriptor_key(
    q: &SsbQuery,
    plan_label: &str,
    fact_order: &[usize],
    store_version: u64,
) -> String {
    let mut k = filter_key(q, plan_label, fact_order, store_version);
    let _ = write!(k, "|id={}|group={:?}|agg={:?}", q.id, q.group_by, q.aggregate);
    k
}

/// Key for a memoized *plan*: store version plus the full query
/// descriptor — everything planning reads. Unlike [`descriptor_key`] it
/// needs no plan label (it exists to avoid computing one).
pub fn plan_key(q: &SsbQuery, store_version: u64) -> String {
    let mut k = String::with_capacity(160);
    let _ = write!(
        k,
        "v{store_version}|id={}|dim={:?}|fact={:?}|group={:?}|agg={:?}",
        q.id, q.dim_predicates, q.fact_predicates, q.group_by, q.aggregate
    );
    k
}

/// Key for a reusable *filter* intermediate (the surviving fact position
/// list): store version, plan choice, fact-predicate order, and the dim +
/// fact predicates. Deliberately excludes query id, grouping, and
/// aggregate, so different aggregations over the same filter share one
/// intermediate.
pub fn filter_key(
    q: &SsbQuery,
    plan_label: &str,
    fact_order: &[usize],
    store_version: u64,
) -> String {
    let mut k = String::with_capacity(128);
    let _ = write!(
        k,
        "v{store_version}|plan={plan_label}|order={fact_order:?}|dim={:?}|fact={:?}",
        q.dim_predicates, q.fact_predicates
    );
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::queries::{all_queries, query};

    #[test]
    fn paper_queries_have_distinct_descriptor_keys() {
        let keys: Vec<String> =
            all_queries().iter().map(|q| descriptor_key(q, "col:tICL", &[], 0)).collect();
        let mut uniq = keys.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), keys.len(), "descriptor keys must be distinct");
    }

    #[test]
    fn every_key_component_matters() {
        let q = query(2, 1);
        let base = descriptor_key(&q, "col:tICL", &[], 0);
        assert_ne!(base, descriptor_key(&q, "col:TICL", &[], 0), "plan label");
        assert_ne!(base, descriptor_key(&q, "col:tICL", &[1], 0), "fact order");
        assert_ne!(base, descriptor_key(&q, "col:tICL", &[], 1), "store version");
        assert_ne!(base, descriptor_key(&query(2, 2), "col:tICL", &[], 0), "descriptor");
    }

    #[test]
    fn filter_key_ignores_grouping_and_aggregate() {
        // Q1.1 vs Q1.2 differ in predicates, so their filter keys differ;
        // but a query differs from itself only in id/group/agg never does.
        let a = query(1, 1);
        assert_ne!(
            filter_key(&a, "col:tICL", &[], 0),
            filter_key(&query(1, 2), "col:tICL", &[], 0)
        );
        let fk = filter_key(&a, "col:tICL", &[], 0);
        assert!(!fk.contains("agg="), "filter key must not embed the aggregate");
        assert!(descriptor_key(&a, "col:tICL", &[], 0).starts_with(&fk));
    }
}
