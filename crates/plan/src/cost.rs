//! The cost model: catalog statistics → modeled seconds.
//!
//! Costs are split the same way the benchmark harness splits measurements
//! (`cvr-bench`): a CPU term and a modeled-disk term,
//!
//! ```text
//! total = cpu_seconds × cpu_scale + io_bytes / bandwidth + seeks × latency
//! ```
//!
//! so an estimated cost is directly comparable to a measured
//! `Measurement::seconds()`. The disk side reuses the storage layer's own
//! [`DiskModel`]; bytes come from the catalog's *actual* per-encoding
//! column sizes and a standard distinct-page estimate for positional
//! gathers. The CPU side prices the operations the engines actually
//! perform — SWAR word compares, scalar block kernels, RLE run walks,
//! tuple-at-a-time `get_next` calls, hash probes, per-tuple row-engine
//! pipeline steps — with per-unit rates that can be recalibrated from
//! `BENCH_kernels.json` (the scan-kernel measurement the `kernels` binary
//! emits) or from a quick in-process micro-measurement.

use cvr_storage::io::{DiskModel, PAGE_SIZE};

/// Per-unit CPU costs, in seconds. Defaults describe a contemporary core;
/// the *ratios* (SWAR ≪ scalar ≪ tuple-at-a-time) matter far more than the
/// absolute values, because plan choices compare candidates under the same
/// model.
#[derive(Debug, Clone, Copy)]
pub struct CpuRates {
    /// One 64-lane SWAR word: compare + mask bank.
    pub swar_word: f64,
    /// One value through the branchless scalar slice kernel.
    pub scalar_value: f64,
    /// One RLE run through the run-at-a-time scan.
    pub rle_run: f64,
    /// One value through the tuple-at-a-time `get_next` interface.
    pub tuple_value: f64,
    /// One hash-set/map probe (invisible-join fallback, lmjoin probe).
    pub hash_probe: f64,
    /// One value through a full-scan membership probe (decode + lookup) —
    /// the lmjoin's first probe and the invisible join's hash fallback.
    pub probe_scan_value: f64,
    /// One positionally gathered value (late materialization).
    pub gather_value: f64,
    /// One tuple through a row-engine operator (scan parse / filter step).
    pub row_tuple: f64,
    /// One row-engine hash-join probe (tuple clone + table lookup).
    pub row_join_probe: f64,
    /// One aggregated row through the Value-keyed reference grouper
    /// (group-key vector allocation + clones + hash update) — the row
    /// engine's tail, and the column engines' only when a group column has
    /// no code space.
    pub agg_row: f64,
    /// One aggregated row through the code-level aggregator (compose a
    /// `u64` group id from extracted codes, bump a direct slot or `u64`
    /// hash entry) — the column engines' tail. Recalibratable from
    /// `BENCH_agg.json`.
    pub agg_code_row: f64,
    /// One `Value` clone during early-materialization tuple stitching.
    pub value_clone: f64,
    /// One B+Tree leaf entry scanned (index-only plans).
    pub index_entry: f64,
    /// One B+Tree leaf entry *streamed* by a key-range scan (clone the
    /// key, push the rid, set a bitmap bit). Cheaper than `index_entry`
    /// — a range scan walks leaves in order with no per-entry descent —
    /// but still an allocation-bearing entry copy, not a bare load.
    pub index_leaf_entry: f64,
    /// One position materialized into an explicit intermediate list (the
    /// late-materialized join's `to_vec`/clone/re-intersect traffic; the
    /// invisible join stays on bitmap words and never pays this).
    pub poslist_touch: f64,
}

impl Default for CpuRates {
    fn default() -> Self {
        CpuRates {
            // Effective rates, calibrated against serial warm-pool
            // measurements of the repo's own engines at sf 0.02 (see the
            // `planner` binary's CVR_PLANNER_DEBUG output): they fold in
            // the surrounding machinery — mask banking and position
            // accumulation for SWAR words, run lookups for RLE — not just
            // the arithmetic.
            swar_word: 6.0e-9,
            scalar_value: 1.0e-9,
            rle_run: 4.0e-9,
            tuple_value: 1.2e-8,
            hash_probe: 1.5e-9, // IntHashMap/Set are array-backed over dense keys
            probe_scan_value: 5.0e-9,
            gather_value: 3.0e-9,
            row_tuple: 1.5e-7,
            row_join_probe: 1.2e-7,
            agg_row: 6.0e-8,
            agg_code_row: 4.0e-9,
            value_clone: 1.5e-8,
            index_entry: 1.5e-7,
            index_leaf_entry: 9.0e-8,
            poslist_touch: 1.5e-8,
        }
    }
}

impl CpuRates {
    /// Recalibrate the kernel-layer rates from a `BENCH_kernels.json`
    /// emitted by `cvr-bench --bin kernels` on this machine. Only the
    /// fields that file measures move (`swar_word`, `scalar_value`); the
    /// rest keep their defaults. Returns `None` when the string does not
    /// look like a kernels report.
    pub fn from_kernel_bench_json(json: &str) -> Option<CpuRates> {
        if !json.contains("\"bench\": \"kernels\"") {
            return None;
        }
        // Minimal field scraper (the workspace vendors no JSON parser): the
        // kernels binary emits one result object per line with known keys.
        let mut scalar = Vec::new();
        let mut word = Vec::new();
        for line in json.lines() {
            let grab = |key: &str| -> Option<f64> {
                let at = line.find(key)? + key.len();
                let rest = &line[at..];
                let end = rest.find([',', '}'])?;
                rest[..end].trim().parse().ok()
            };
            if let Some(v) = grab("\"scalar_ns_per_value\":") {
                scalar.push(v);
            }
            // Plain columns have no word-parallel lane trick; only packed
            // encodings measure the SWAR path meaningfully.
            if !line.contains("plain_i64") {
                if let Some(v) = grab("\"word_ns_per_value\":") {
                    word.push(v);
                }
            }
        }
        if scalar.is_empty() || word.is_empty() {
            return None;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        Some(CpuRates {
            scalar_value: mean(&scalar) * 1e-9,
            // word_ns_per_value is per *value*; a word carries ~8 lanes at
            // the benchmark's mid widths, and the engine wraps the raw
            // kernel in mask banking + position accumulation (~3× the bare
            // compare in the serial engine measurements).
            swar_word: mean(&word) * 1e-9 * 8.0 * 3.0,
            ..CpuRates::default()
        })
    }

    /// Recalibrate the aggregation-tail rates from a `BENCH_agg.json`
    /// emitted by `cvr-bench --bin agg` on this machine: `agg_row` from the
    /// measured Value-keyed grouper, `agg_code_row` from the code-level
    /// aggregator, each averaged across the report's cells. Returns `None`
    /// when the string does not look like an agg report.
    pub fn from_agg_bench_json(json: &str) -> Option<CpuRates> {
        if !json.contains("\"bench\": \"agg\"") {
            return None;
        }
        let mut value = Vec::new();
        let mut code = Vec::new();
        for line in json.lines() {
            let grab = |key: &str| -> Option<f64> {
                let at = line.find(key)? + key.len();
                let rest = &line[at..];
                let end = rest.find([',', '}'])?;
                rest[..end].trim().parse().ok()
            };
            if let Some(v) = grab("\"value_ns_per_row\":") {
                value.push(v);
            }
            if let Some(v) = grab("\"code_ns_per_row\":") {
                code.push(v);
            }
        }
        if value.is_empty() || code.is_empty() {
            return None;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        Some(CpuRates {
            agg_row: mean(&value) * 1e-9,
            agg_code_row: mean(&code) * 1e-9,
            ..CpuRates::default()
        })
    }

    /// Quick in-process calibration of the two rates that vary most across
    /// machines: the scalar block kernel and the tuple-at-a-time interface.
    /// Deterministic work, wall-clock measured; everything else scales from
    /// the measured scalar rate by the default ratios.
    pub fn calibrated() -> CpuRates {
        let n = 1 << 16;
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 97).collect();

        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..8 {
            for &v in &values {
                acc += u64::from((10..=60).contains(&v));
            }
        }
        std::hint::black_box(acc);
        let scalar = t0.elapsed().as_secs_f64() / (8.0 * n as f64);

        let t1 = std::time::Instant::now();
        let mut it: Box<dyn Iterator<Item = &i64>> = Box::new(values.iter());
        let mut acc2 = 0i64;
        for _ in 0..n {
            if let Some(v) = std::hint::black_box(&mut it).next() {
                acc2 += *v;
            }
        }
        std::hint::black_box(acc2);
        let tuple = (t1.elapsed().as_secs_f64() / n as f64).max(scalar);

        let d = CpuRates::default();
        let scale = (scalar / d.scalar_value).max(0.1);
        CpuRates {
            swar_word: d.swar_word * scale,
            scalar_value: scalar.max(1e-11),
            rle_run: d.rle_run * scale,
            tuple_value: tuple.max(1e-10),
            hash_probe: d.hash_probe * scale,
            probe_scan_value: d.probe_scan_value * scale,
            gather_value: d.gather_value * scale,
            row_tuple: d.row_tuple * scale,
            row_join_probe: d.row_join_probe * scale,
            agg_row: d.agg_row * scale,
            agg_code_row: d.agg_code_row * scale,
            value_clone: d.value_clone * scale,
            index_entry: d.index_entry * scale,
            index_leaf_entry: d.index_leaf_entry * scale,
            poslist_touch: d.poslist_touch * scale,
        }
    }
}

/// Everything needed to turn a [`CostBreakdown`] into seconds, mirroring
/// the harness's `cpu × cpu_scale + DiskModel::io_time` arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// The modeled disk (defaults to the paper's 200 MB/s, 4 ms seeks).
    pub disk: DiskModel,
    /// CPU multiplier, matching the harness `--cpu-scale` (default 5).
    pub cpu_scale: f64,
    /// Per-operation CPU rates.
    pub rates: CpuRates,
    /// Buffer-pool capacity in bytes, when planning for a *warm* harness
    /// (the benchmark warms the pool before measuring). A plan whose
    /// entire working set fits re-reads only pool hits, which are free;
    /// one that exceeds capacity thrashes the CLOCK pool on sequential
    /// scans and pays full cold cost. `None` plans for a cold run.
    pub pool_bytes: Option<u64>,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            disk: DiskModel::default(),
            cpu_scale: 5.0,
            rates: CpuRates::default(),
            pool_bytes: None,
        }
    }
}

impl CostParams {
    /// Apply the warm-pool model to a finished plan estimate: a plan whose
    /// *union working set* (each page counted once, however many phases
    /// touch it) fits the pool costs no I/O on measured (post-warm-up)
    /// runs; anything larger pays in full (repeated sequential scans evict
    /// everything before it is re-read). The summed `io_bytes` cannot be
    /// used for the fit test — a plan that scans a column in phase 2 and
    /// gathers from it again in phase 3 charges it twice but caches it
    /// once.
    pub fn pool_adjust(&self, c: CostBreakdown, working_set: u64) -> CostBreakdown {
        match self.pool_bytes {
            Some(pool) if working_set <= pool => CostBreakdown::cpu(c.cpu_seconds),
            _ => c,
        }
    }
}

/// The union working set of a plan: per-column bytes touched, each column
/// counted once at the *largest* touch (a full scan subsumes any gather).
#[derive(Debug, Clone, Default)]
pub struct WorkingSet(std::collections::HashMap<String, u64>);

impl WorkingSet {
    /// Record `bytes` touched of column `key` (max-merged per column).
    pub fn touch(&mut self, key: &str, bytes: u64) {
        let slot = self.0.entry(key.to_string()).or_insert(0);
        *slot = (*slot).max(bytes);
    }

    /// Total distinct bytes.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }
}

/// An estimated cost: CPU seconds plus modeled disk traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Estimated CPU seconds (before `cpu_scale`).
    pub cpu_seconds: f64,
    /// Estimated bytes read from the modeled disk.
    pub io_bytes: u64,
    /// Estimated positioning seeks.
    pub seeks: u64,
}

impl CostBreakdown {
    /// Accumulate another term.
    pub fn add(&mut self, other: CostBreakdown) {
        self.cpu_seconds += other.cpu_seconds;
        self.io_bytes += other.io_bytes;
        self.seeks += other.seeks;
    }

    /// Pure-CPU term.
    pub fn cpu(seconds: f64) -> CostBreakdown {
        CostBreakdown { cpu_seconds: seconds, ..CostBreakdown::default() }
    }

    /// Modeled seconds under `params` — comparable to a measured
    /// `Measurement::seconds()`.
    pub fn seconds(&self, params: &CostParams) -> f64 {
        let transfer = self.io_bytes as f64 / params.disk.seq_bandwidth;
        let seeks = params.disk.seek_latency.as_secs_f64() * self.seeks as f64;
        self.cpu_seconds * params.cpu_scale + transfer + seeks
    }
}

/// Expected distinct pages touched when gathering `k` roughly uniform
/// positions from a file of `pages` pages (the classic Cardenas/Yao
/// approximation `P·(1 − (1 − 1/P)^k)`, in its exp form).
pub fn pages_touched(k: u64, pages: u64) -> u64 {
    if pages == 0 || k == 0 {
        return 0;
    }
    let p = pages as f64;
    (p * (1.0 - (-(k as f64) / p).exp())).ceil().min(p) as u64
}

/// Cost of a full sequential scan of a file of `bytes` bytes: one
/// positioning seek, then pure transfer.
pub fn seq_scan(bytes: u64) -> CostBreakdown {
    CostBreakdown { cpu_seconds: 0.0, io_bytes: bytes, seeks: 1 }
}

/// Cost of gathering `k` positions out of `n` from a column of `bytes`
/// bytes: distinct pages at page grain, each treated as a seek (positions
/// are sparse once `k ≪ n`), plus per-value decode CPU.
pub fn gather(k: u64, n: u64, bytes: u64, rates: &CpuRates) -> CostBreakdown {
    if n == 0 || k == 0 {
        return CostBreakdown::default();
    }
    let pages = bytes.div_ceil(PAGE_SIZE).max(1);
    let touched = pages_touched(k.min(n), pages);
    // Positions ascend, so touched pages are visited in order: a page is a
    // *seek* only when the previous touched page was not its neighbor.
    // Expected skips = touched × (1 − touched/pages); dense gathers that
    // touch every page degrade to one positioning seek, like a scan.
    let skip_fraction = 1.0 - touched as f64 / pages as f64;
    let seeks = 1 + (touched as f64 * skip_fraction).round() as u64;
    CostBreakdown {
        cpu_seconds: k as f64 * rates.gather_value,
        io_bytes: touched * PAGE_SIZE.min(bytes),
        seeks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_mirror_harness_arithmetic() {
        let p = CostParams::default();
        let c = CostBreakdown { cpu_seconds: 0.01, io_bytes: 200 * 1024 * 1024, seeks: 10 };
        // 0.01×5 + 1.0s transfer + 0.04s seeks
        let s = c.seconds(&p);
        assert!((s - 1.09).abs() < 1e-9, "{s}");
    }

    #[test]
    fn pages_touched_saturates() {
        assert_eq!(pages_touched(0, 100), 0);
        assert_eq!(pages_touched(1, 100), 1);
        assert!(pages_touched(50, 100) <= 50);
        assert_eq!(pages_touched(1_000_000, 100), 100);
    }

    #[test]
    fn gather_cheaper_than_scan_when_sparse() {
        let rates = CpuRates::default();
        let scan = seq_scan(10 * 1024 * 1024);
        let g = gather(10, 1_000_000, 10 * 1024 * 1024, &rates);
        assert!(g.io_bytes < scan.io_bytes);
    }

    #[test]
    fn kernel_json_recalibration() {
        let json = r#"{
  "bench": "kernels",
  "n": 1024,
  "results": [
    {"kernel": "int_range", "encoding": "packed_b6", "selectivity": 0.01, "scalar_ns_per_value": 2.0, "word_ns_per_value": 0.25, "speedup": 8.0},
    {"kernel": "dict_pred", "encoding": "plain_i64", "selectivity": 0.01, "scalar_ns_per_value": 1.0, "word_ns_per_value": 0.9, "speedup": 1.1}
  ]
}"#;
        let rates = CpuRates::from_kernel_bench_json(json).expect("parses");
        assert!((rates.scalar_value - 1.5e-9).abs() < 1e-12);
        assert!((rates.swar_word - 0.25e-9 * 8.0 * 3.0).abs() < 1e-12);
        assert!(CpuRates::from_kernel_bench_json("{}").is_none());
    }

    #[test]
    fn calibration_produces_positive_ordered_rates() {
        let r = CpuRates::calibrated();
        assert!(r.scalar_value > 0.0);
        assert!(r.tuple_value >= r.scalar_value);
        assert!(r.row_tuple > r.scalar_value);
        assert!(r.agg_code_row < r.agg_row, "code-level tail must model cheaper");
    }

    #[test]
    fn agg_json_recalibration() {
        let json = r#"{
  "bench": "agg",
  "results": [
    {"cell": "Q2.1", "rows": 1000, "groups": 70, "value_ns_per_row": 80.0, "code_ns_per_row": 5.0, "speedup": 16.0},
    {"cell": "Q3.1", "rows": 1000, "groups": 150, "value_ns_per_row": 120.0, "code_ns_per_row": 7.0, "speedup": 17.1}
  ]
}"#;
        let rates = CpuRates::from_agg_bench_json(json).expect("parses");
        assert!((rates.agg_row - 100.0e-9).abs() < 1e-12);
        assert!((rates.agg_code_row - 6.0e-9).abs() < 1e-12);
        assert!(CpuRates::from_agg_bench_json("{}").is_none());
        // The kernels parser must not eat agg reports and vice versa.
        assert!(CpuRates::from_kernel_bench_json(json).is_none());
    }
}
