//! Catalog statistics: what the planner knows about the data.
//!
//! Everything here is computed once from the *real* storage layer — not
//! assumed. Per column:
//!
//! * row count, min/max, and number of distinct values (NDV);
//! * an equi-depth histogram over integer columns (built from a
//!   deterministic stride sample, so catalog construction stays cheap at
//!   large scale factors);
//! * a complete value-frequency table for low-NDV string columns (the SSB
//!   dimension hierarchies all qualify), giving *exact* per-predicate
//!   fractions where the paper's queries live;
//! * the **actual encoded bytes** of both storage variants, taken from the
//!   built `cvr-storage` columns (`StoredColumn::bytes`), plus the encoding
//!   shape the compressed variant chose (RLE run count, packed lanes per
//!   word) — the numbers the cost model charges against the modeled disk.
//!
//! Selectivity estimation follows the textbook rules (uniformity within
//! histogram buckets, independence across predicates, FK uniformity from
//! dimension fraction to fact fraction) — exactly the assumptions the SSB
//! generator satisfies, which is why the estimates land within tolerance of
//! the paper's Section 3 selectivity table (see the crate tests).

use std::collections::HashMap;

use cvr_core::projection::dim_sort_columns;
use cvr_core::{CStoreDb, ColumnEngine, EngineConfig};
use cvr_data::queries::{FactPredicate, Pred, SsbQuery};
use cvr_data::schema::Dim;
use cvr_data::table::{ColumnData, TableData};
use cvr_data::value::Value;
use cvr_storage::encode::{Column, IntColumn, StrColumn};
use cvr_storage::rowcodec::encoded_size;
use cvr_storage::StoredColumn;

/// Histogram bucket count.
const HIST_BUCKETS: usize = 64;
/// Sample-size caps keeping catalog builds cheap at large scale factors.
const HIST_SAMPLE: usize = 65_536;
const NDV_SAMPLE: usize = 262_144;
/// NDV ceiling for exact string frequency tables.
const STR_FREQ_MAX_NDV: usize = 4_096;

/// Equi-depth histogram over an integer column.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket boundaries, ascending; `bounds[k]..=bounds[k+1]` holds an
    /// equal share of the sampled values.
    bounds: Vec<i64>,
}

impl Histogram {
    fn build(values: &[i64]) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        // Deterministic stride sample, then sort.
        let stride = (values.len() / HIST_SAMPLE).max(1);
        let mut sample: Vec<i64> = values.iter().step_by(stride).copied().collect();
        sample.sort_unstable();
        let b = HIST_BUCKETS.min(sample.len());
        let mut bounds = Vec::with_capacity(b + 1);
        for k in 0..=b {
            let idx = (k * (sample.len() - 1)) / b;
            bounds.push(sample[idx]);
        }
        Some(Histogram { bounds })
    }

    /// Estimated `P(x <= v)`, linear-interpolating inside buckets (integer
    /// support: a bucket `[lo, hi]` is treated as the half-open real
    /// interval `[lo, hi + 1)`).
    pub fn fraction_le(&self, v: i64) -> f64 {
        let b = self.bounds.len() - 1;
        if b == 0 {
            return if v >= self.bounds[0] { 1.0 } else { 0.0 };
        }
        if v < self.bounds[0] {
            return 0.0;
        }
        if v >= self.bounds[b] {
            return 1.0;
        }
        let mut acc = 0.0;
        for k in 0..b {
            let (lo, hi) = (self.bounds[k], self.bounds[k + 1].max(self.bounds[k]));
            let share = 1.0 / b as f64;
            if v >= hi {
                acc += share;
            } else {
                let span = (hi + 1 - lo) as f64;
                acc += share * ((v + 1 - lo) as f64 / span).clamp(0.0, 1.0);
                break;
            }
        }
        acc.min(1.0)
    }

    /// Estimated fraction of values in `lo..=hi`.
    pub fn fraction_range(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.fraction_le(hi) - self.fraction_le(lo - 1)).max(0.0)
    }
}

/// The encoding shape the compressed storage variant chose for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingKind {
    /// Byte-minimized plain integers / plain strings.
    Plain,
    /// Run-length encoded integers.
    Rle,
    /// Frame-of-reference bit-packed integers.
    Packed,
    /// Dictionary strings with bit-packed codes.
    Dict,
}

impl EncodingKind {
    /// Short label for explain output.
    pub fn label(self) -> &'static str {
        match self {
            EncodingKind::Plain => "plain",
            EncodingKind::Rle => "rle",
            EncodingKind::Packed => "packed",
            EncodingKind::Dict => "dict",
        }
    }
}

/// Statistics for one column of one table.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Number of distinct values (sampled above [`NDV_SAMPLE`] rows).
    pub ndv: u64,
    /// Min value (integer columns).
    pub min: Option<i64>,
    /// Max value (integer columns).
    pub max: Option<i64>,
    /// Equi-depth histogram (integer columns).
    pub histogram: Option<Histogram>,
    /// Exact `(value, count)` table, sorted by value (low-NDV string
    /// columns).
    pub str_freqs: Option<Vec<(Box<str>, u64)>>,
    /// Actual encoded bytes of the uncompressed storage variant.
    pub plain_bytes: u64,
    /// Actual encoded bytes of the compressed storage variant.
    pub compressed_bytes: u64,
    /// Encoding the compressed variant chose.
    pub encoding: EncodingKind,
    /// Run count when [`EncodingKind::Rle`].
    pub rle_runs: Option<u64>,
    /// Lanes per 64-bit word when packed (directly, or as dictionary codes).
    pub packed_lanes: Option<u8>,
}

impl ColumnStats {
    fn build(
        name: &str,
        data: &ColumnData,
        comp: &StoredColumn,
        plain: &StoredColumn,
    ) -> ColumnStats {
        let rows = data.len() as u64;
        let (min, max, histogram, ndv, str_freqs) = match data {
            ColumnData::Int(v) => {
                let (mut lo, mut hi) = (i64::MAX, i64::MIN);
                for &x in v.iter() {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                let stride = (v.len() / NDV_SAMPLE).max(1);
                let distinct: std::collections::HashSet<i64> =
                    v.iter().step_by(stride).copied().collect();
                let ndv = distinct.len() as u64;
                let (min, max) = if v.is_empty() { (None, None) } else { (Some(lo), Some(hi)) };
                (min, max, Histogram::build(v), ndv.max(1), None)
            }
            ColumnData::Str(v) => {
                let mut freqs: HashMap<&str, u64> = HashMap::new();
                for s in v.iter() {
                    *freqs.entry(s.as_str()).or_default() += 1;
                }
                let ndv = freqs.len() as u64;
                let table = if freqs.len() <= STR_FREQ_MAX_NDV {
                    let mut t: Vec<(Box<str>, u64)> =
                        freqs.into_iter().map(|(s, c)| (Box::from(s), c)).collect();
                    t.sort();
                    Some(t)
                } else {
                    None
                };
                (None, None, None, ndv.max(1), table)
            }
        };
        let (encoding, rle_runs, packed_lanes) = match &comp.column {
            Column::Int(c @ IntColumn::Rle { .. }) => {
                (EncodingKind::Rle, Some(c.runs().len() as u64), None)
            }
            Column::Int(IntColumn::Packed { packed, .. }) => {
                (EncodingKind::Packed, None, Some(packed.lanes_per_word()))
            }
            Column::Str(StrColumn::Dict { codes, .. }) => {
                (EncodingKind::Dict, None, Some(codes.lanes_per_word()))
            }
            _ => (EncodingKind::Plain, None, None),
        };
        ColumnStats {
            name: name.to_string(),
            rows,
            ndv,
            min,
            max,
            histogram,
            str_freqs,
            plain_bytes: plain.bytes(),
            compressed_bytes: comp.bytes(),
            encoding,
            rle_runs,
            packed_lanes,
        }
    }

    /// Encoded bytes of the variant serving `compressed`.
    pub fn bytes(&self, compressed: bool) -> u64 {
        if compressed {
            self.compressed_bytes
        } else {
            self.plain_bytes
        }
    }

    /// Estimated fraction of this column's rows matching `pred`.
    pub fn estimate(&self, pred: &Pred) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        if let Some(freqs) = &self.str_freqs {
            // Exact arithmetic over the frequency table.
            let matched: u64 = freqs
                .iter()
                .filter(|(v, _)| pred.matches(&Value::Str(v.clone())))
                .map(|(_, c)| c)
                .sum();
            return matched as f64 / self.rows as f64;
        }
        match pred {
            Pred::Eq(v) => match (v, self.min, self.max) {
                (Value::Int(x), Some(lo), Some(hi)) if *x >= lo && *x <= hi => {
                    1.0 / self.ndv as f64
                }
                (Value::Int(_), _, _) => 0.0,
                // String column without a frequency table: uniform over NDV.
                (Value::Str(_), _, _) => 1.0 / self.ndv as f64,
            },
            Pred::InSet(vs) => {
                vs.iter().map(|v| self.estimate(&Pred::Eq(v.clone()))).sum::<f64>().min(1.0)
            }
            Pred::Between(lo, hi) => match (lo, hi, &self.histogram) {
                (Value::Int(a), Value::Int(b), Some(h)) => h.fraction_range(*a, *b),
                // No histogram (string Between without freqs): guess a third.
                _ => 1.0 / 3.0,
            },
            Pred::Lt(v) => match (v, &self.histogram) {
                (Value::Int(x), Some(h)) => h.fraction_le(*x - 1),
                _ => 1.0 / 3.0,
            },
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    cols: HashMap<String, ColumnStats>,
}

impl TableStats {
    fn build(
        data: &TableData,
        comp: &cvr_storage::ColumnStore,
        plain: &cvr_storage::ColumnStore,
    ) -> TableStats {
        let cols = data
            .schema
            .columns
            .iter()
            .zip(&data.columns)
            .map(|(def, col)| {
                (
                    def.name.to_string(),
                    ColumnStats::build(
                        def.name,
                        col,
                        comp.column(def.name),
                        plain.column(def.name),
                    ),
                )
            })
            .collect();
        TableStats { name: data.schema.name.to_string(), rows: data.num_rows() as u64, cols }
    }

    /// Stats for `column`, panicking on unknown names (queries are checked
    /// against the schema before they reach the planner).
    pub fn column(&self, column: &str) -> &ColumnStats {
        self.cols.get(column).unwrap_or_else(|| panic!("no statistics for {}.{column}", self.name))
    }

    /// Sum of encoded bytes over `columns` at one compression setting.
    pub fn bytes_of(&self, columns: &[&str], compressed: bool) -> u64 {
        columns.iter().map(|c| self.column(c).bytes(compressed)).sum()
    }
}

/// Approximate on-disk sizes of the row-engine physical designs, derived
/// from sampled `rowcodec` record lengths (the same codec the heaps use).
#[derive(Debug, Clone)]
pub struct RowSizes {
    /// Full 17-column LINEORDER heap bytes (traditional design).
    pub fact_heap_bytes: u64,
    /// Dimension heap bytes.
    pub dim_heap_bytes: HashMap<Dim, u64>,
    /// Per-flight materialized-view heap bytes (index = flight − 1).
    pub mv_view_bytes: [u64; 4],
    /// Mean encoded record bytes of one full fact row.
    pub fact_row_bytes: f64,
}

/// Mean `rowcodec` record bytes over a deterministic row sample.
fn mean_record_bytes(data: &TableData, columns: Option<&[&'static str]>) -> f64 {
    let n = data.num_rows();
    if n == 0 {
        return 0.0;
    }
    let projected;
    let data = match columns {
        Some(cols) => {
            projected = data.project(cols);
            &projected
        }
        None => data,
    };
    let stride = (n / 4096).max(1);
    let mut total = 0usize;
    let mut count = 0usize;
    let mut i = 0;
    while i < n {
        total += encoded_size(&data.row(i));
        count += 1;
        i += stride;
    }
    total as f64 / count as f64
}

/// The planner's catalog: per-table statistics plus design-level sizes.
pub struct Catalog {
    /// LINEORDER statistics (value stats from the logical table, encoded
    /// bytes from the sorted fact projection).
    pub fact: TableStats,
    dims: HashMap<Dim, TableStats>,
    /// Row-design size estimates.
    pub row_sizes: RowSizes,
    /// Fraction of DATE rows per calendar year, for partition pruning
    /// estimates (year → fraction).
    year_fractions: Vec<(i64, f64)>,
}

impl Catalog {
    /// Build the catalog from a [`ColumnEngine`] (which already holds both
    /// storage variants over the generated tables).
    pub fn build(engine: &ColumnEngine) -> Catalog {
        let comp: &CStoreDb = engine.db(EngineConfig::FULL);
        let plain: &CStoreDb = engine.db(EngineConfig::parse("tIcl"));
        let tables = &comp.tables;

        let fact = TableStats::build(&tables.lineorder, &comp.fact, &plain.fact);
        let dims: HashMap<Dim, TableStats> = Dim::ALL
            .iter()
            .map(|&d| {
                (d, TableStats::build(tables.dim(d), &comp.dim(d).store, &plain.dim(d).store))
            })
            .collect();

        // Row-design sizes from sampled record lengths. Heap pages carry
        // slack (records never span pages); 32 KB pages over ~40-90 B rows
        // make that under 0.3%, so the mean-record estimate is plenty.
        let fact_row_bytes = mean_record_bytes(&tables.lineorder, None);
        let fact_heap_bytes = (fact_row_bytes * tables.lineorder.num_rows() as f64) as u64;
        let dim_heap_bytes = Dim::ALL
            .iter()
            .map(|&d| {
                let t = tables.dim(d);
                (d, (mean_record_bytes(t, None) * t.num_rows() as f64) as u64)
            })
            .collect();
        let mut mv_view_bytes = [0u64; 4];
        for flight in 1..=4u8 {
            // One shared view definition with the enumerator's MV gate.
            let columns = crate::enumerate::mv_view_columns(flight);
            let mean = mean_record_bytes(&tables.lineorder, Some(columns));
            mv_view_bytes[(flight - 1) as usize] =
                (mean * tables.lineorder.num_rows() as f64) as u64;
        }

        // Per-year DATE fractions for partition pruning estimates.
        let years = tables.date.column("d_year").ints();
        let mut counts: HashMap<i64, u64> = HashMap::new();
        for &y in years {
            *counts.entry(y).or_default() += 1;
        }
        let total = years.len() as f64;
        let mut year_fractions: Vec<(i64, f64)> =
            counts.into_iter().map(|(y, c)| (y, c as f64 / total)).collect();
        year_fractions.sort_unstable_by_key(|&(y, _)| y);

        Catalog {
            fact,
            dims,
            row_sizes: RowSizes { fact_heap_bytes, dim_heap_bytes, mv_view_bytes, fact_row_bytes },
            year_fractions,
        }
    }

    /// Statistics of dimension `d`.
    pub fn dim(&self, d: Dim) -> &TableStats {
        &self.dims[&d]
    }

    /// Number of fact rows.
    pub fn fact_rows(&self) -> u64 {
        self.fact.rows
    }

    /// Estimated fraction of dimension `d`'s rows matching all of `q`'s
    /// predicates on it (independence across predicates; 1.0 when
    /// unrestricted).
    pub fn dim_selectivity(&self, q: &SsbQuery, d: Dim) -> f64 {
        q.dim_predicates_on(d)
            .iter()
            .map(|p| self.dim(d).column(p.column).estimate(&p.pred))
            .product()
    }

    /// Estimated fraction of fact rows matching one fact predicate.
    pub fn fact_pred_selectivity(&self, p: &FactPredicate) -> f64 {
        self.fact.column(p.column).estimate(&p.pred)
    }

    /// Estimated LINEORDER selectivity of `q`: dimension fractions carry to
    /// the fact table through uniform foreign keys, fact predicates apply
    /// directly, independence across all of them — the Section 3
    /// arithmetic, but driven by histograms over the generated data.
    pub fn selectivity(&self, q: &SsbQuery) -> f64 {
        let dims: f64 = Dim::ALL.iter().map(|&d| self.dim_selectivity(q, d)).product();
        let facts: f64 = q.fact_predicates.iter().map(|p| self.fact_pred_selectivity(p)).product();
        dims * facts
    }

    /// Whether `q`'s estimate rests on enough data to be statistically
    /// meaningful: every restricted dimension must have at least ~8
    /// expected matching rows in its (possibly tiny, scale-factor-shrunk)
    /// table. Below that, the *true* fraction in the generated data is
    /// itself dominated by sampling noise — e.g. two specific cities out of
    /// 250 over a 100-row SUPPLIER table — and neither the estimate nor the
    /// paper-quoted number describes the actual dataset.
    pub fn stats_supported(&self, q: &SsbQuery) -> bool {
        q.restricted_dims()
            .iter()
            .all(|&d| self.dim_selectivity(q, d) * self.dim(d).rows as f64 >= 8.0)
    }

    /// Estimated fraction of `orderdate` partitions (years) a traditional
    /// scan must touch: 1.0 without a DATE restriction, else the estimated
    /// share of DATE rows matching the date predicates, rounded *up* to
    /// whole years (a partition is scanned entirely if any of its days
    /// qualify).
    pub fn year_fraction(&self, q: &SsbQuery) -> f64 {
        let sel = self.dim_selectivity(q, Dim::Date);
        if sel >= 1.0 {
            return 1.0;
        }
        // A restriction selecting fraction `sel` of days touches at least
        // ⌈sel × years⌉ partitions; clamp to one partition minimum.
        let years = self.year_fractions.len() as f64;
        ((sel * years).ceil() / years).clamp(1.0 / years, 1.0)
    }

    /// Whether `q`'s predicates on `d` are *likely* rewritable to a
    /// contiguous key range (between-predicate rewriting): single Eq /
    /// Between predicates on the dimension's sort-hierarchy columns produce
    /// contiguous position runs under hierarchy sorting.
    pub fn likely_contiguous(&self, q: &SsbQuery, d: Dim) -> bool {
        let preds = q.dim_predicates_on(d);
        if preds.is_empty() {
            return false;
        }
        let hierarchy = dim_sort_columns(d);
        // DATE is sorted by datekey; year/month predicates still select
        // contiguous datekey ranges because the calendar ascends with the
        // key.
        let date_contig = ["d_year", "d_yearmonthnum", "d_yearmonth", "d_datekey"];
        preds.iter().all(|p| {
            let on_hierarchy = if d == Dim::Date {
                date_contig.contains(&p.column)
            } else {
                hierarchy.contains(&p.column)
            };
            on_hierarchy && matches!(p.pred, Pred::Eq(_) | Pred::Between(..))
        }) && (preds.len() == 1 || d == Dim::Date)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::{all_queries, query};
    use std::sync::Arc;

    fn catalog() -> &'static Catalog {
        static CAT: std::sync::OnceLock<Catalog> = std::sync::OnceLock::new();
        CAT.get_or_init(|| {
            let tables = Arc::new(SsbConfig { sf: 0.05, seed: 7 }.generate());
            Catalog::build(&ColumnEngine::new(tables))
        })
    }

    #[test]
    fn histogram_fractions_are_sane() {
        let values: Vec<i64> = (0..10_000).map(|i| i % 50 + 1).collect();
        let h = Histogram::build(&values).unwrap();
        let lt25 = h.fraction_le(24);
        assert!((lt25 - 0.48).abs() < 0.05, "P(q<25) ~ 0.48, got {lt25}");
        let between = h.fraction_range(26, 35);
        assert!((between - 0.2).abs() < 0.05, "P(26<=q<=35) ~ 0.2, got {between}");
        assert_eq!(h.fraction_range(100, 200), 0.0);
        assert_eq!(h.fraction_le(50), 1.0);
    }

    #[test]
    fn encoded_bytes_come_from_real_storage() {
        let tables = Arc::new(SsbConfig { sf: 0.002, seed: 11 }.generate());
        let engine = ColumnEngine::new(tables);
        let cat = Catalog::build(&engine);
        let quantity = cat.fact.column("lo_quantity");
        assert_eq!(
            quantity.compressed_bytes,
            engine.db(EngineConfig::FULL).fact.column("lo_quantity").bytes()
        );
        assert_eq!(
            quantity.plain_bytes,
            engine.db(EngineConfig::parse("tIcl")).fact.column("lo_quantity").bytes()
        );
        assert!(quantity.compressed_bytes < quantity.plain_bytes);
        assert_eq!(quantity.encoding, EncodingKind::Packed);
        // The sorted fact leads with orderdate: RLE with recorded run count.
        let od = cat.fact.column("lo_orderdate");
        assert_eq!(od.encoding, EncodingKind::Rle);
        assert!(od.rle_runs.unwrap() > 0 && od.rle_runs.unwrap() < od.rows);
    }

    #[test]
    fn string_frequency_tables_are_exact() {
        let cat = catalog();
        let region = cat.dim(Dim::Customer).column("c_region");
        let est = region.estimate(&Pred::Eq(Value::str("ASIA")));
        assert!((est - 0.2).abs() < 0.08, "region fraction ~1/5, got {est}");
        assert_eq!(region.estimate(&Pred::Eq(Value::str("ATLANTIS"))), 0.0);
    }

    #[test]
    fn per_query_selectivities_track_paper() {
        let cat = catalog();
        let mut supported = 0;
        for q in all_queries() {
            let est = cat.selectivity(&q);
            let paper = q.paper_selectivity;
            if !cat.stats_supported(&q) {
                // Dimension too small at this scale factor for the paper
                // number to describe the generated data (see
                // `Catalog::stats_supported`); the estimate still must not
                // be wildly off the mark.
                assert!(est <= paper * 40.0 + 1e-4, "{}: {est:.2e} vs {paper:.2e}", q.id);
                continue;
            }
            supported += 1;
            assert!(
                est <= paper * 2.5 + 5e-5 && est >= paper / 2.5 - 5e-7,
                "{}: estimated {est:.2e} vs paper {paper:.2e}",
                q.id
            );
        }
        assert!(supported >= 8, "only {supported}/13 queries statistically checkable");
    }

    #[test]
    fn year_fraction_prunes_partitions() {
        let cat = catalog();
        let f11 = cat.year_fraction(&query(1, 1)); // d_year = 1993
        assert!(f11 < 0.2, "one of seven years, got {f11}");
        let f21 = cat.year_fraction(&query(2, 1)); // no date restriction
        assert_eq!(f21, 1.0);
        let f31 = cat.year_fraction(&query(3, 1)); // 6 of 7 years
        assert!(f31 > 0.75 && f31 <= 1.0, "six of seven years, got {f31}");
    }

    #[test]
    fn contiguity_prediction_matches_plan_shapes() {
        let cat = catalog();
        assert!(cat.likely_contiguous(&query(3, 1), Dim::Customer)); // region Eq
        assert!(cat.likely_contiguous(&query(1, 1), Dim::Date)); // year Eq
        assert!(cat.likely_contiguous(&query(4, 1), Dim::Customer));
        assert!(!cat.likely_contiguous(&query(3, 3), Dim::Customer)); // city InSet
        assert!(!cat.likely_contiguous(&query(2, 1), Dim::Date)); // unrestricted
    }
}
