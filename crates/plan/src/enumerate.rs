//! Plan enumeration: search the physical-design space both engines expose,
//! cost every candidate, keep the cheapest.
//!
//! The space is exactly what the repo's engines can execute today:
//!
//! * **column engine** — plan shape (invisible join / late-materialized
//!   join / early materialization) × compression (on / off), with the
//!   fact-predicate evaluation order chosen from the statistics (most
//!   selective first, unless the estimates say the declared order is
//!   already best);
//! * **row engine** — the Figure 6 physical designs plus the super-tuple
//!   VP extension (`RowDesign::EXTENDED`), with per-design applicability
//!   rules: materialized views exist only for the four paper flights, and
//!   index-only plans only cover columns some paper query indexes.
//!
//! Every candidate gets a [`CostBreakdown`] from the statistics in
//! [`Catalog`]; the winner is returned as a [`Plan`] together with an
//! [`Explain`] tree that prints the estimate the way `EXPLAIN` would.

use cvr_core::EngineConfig;
use cvr_data::queries::{QueryId, SsbQuery};
use cvr_data::schema::Dim;
use cvr_row::designs::RowDesign;

use crate::cost::{gather, seq_scan, CostBreakdown, CostParams, WorkingSet};
use crate::explain::{write_json_string, Explain};
use crate::stats::{Catalog, ColumnStats, EncodingKind};

/// Entries per B+Tree leaf page in the row engine's indexes: bulk loads
/// fill leaves to ~2/3 of the default order (2048), and every node
/// occupies one full 32 KB page regardless of payload.
const INDEX_ENTRIES_PER_LEAF: f64 = 2048.0 * 2.0 / 3.0;

/// I/O a B+Tree range scan charges for `entries` consecutive leaf
/// entries: whole leaf pages at the bulk-load fill factor, plus a
/// two-page root descent. The 16-byte entry payload underprices this by
/// ~1.6x — the executor reads node *pages*, not packed entries.
fn index_scan_bytes(entries: f64) -> u64 {
    (((entries / INDEX_ENTRIES_PER_LEAF).ceil() + 2.0) * cvr_storage::io::PAGE_SIZE as f64) as u64
}

/// The physical half of a plan: which engine, in which configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicalChoice {
    /// Column engine under an ablation-letter configuration.
    Column(EngineConfig),
    /// Row engine under a physical design.
    Row(RowDesign),
}

impl PhysicalChoice {
    /// Short label: the ablation letters (`tICL`) or the Figure 6 design
    /// code prefixed `row:` (`row:MV`).
    pub fn label(&self) -> String {
        match self {
            PhysicalChoice::Column(cfg) => cfg.code(),
            PhysicalChoice::Row(d) => format!("row:{}", d.label()),
        }
    }
}

/// One costed point in the search space.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Engine + configuration.
    pub choice: PhysicalChoice,
    /// Fact-predicate evaluation order (indices into
    /// `SsbQuery::fact_predicates`).
    pub fact_order: Vec<usize>,
    /// Estimated cost terms.
    pub est: CostBreakdown,
    /// Estimated modeled seconds under the planner's [`CostParams`].
    pub seconds: f64,
    /// Estimate tree (one per candidate, the winner's is shown by
    /// `--explain`).
    pub explain: Explain,
}

/// A chosen plan: the cheapest [`Candidate`] plus the full ranking.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The query this plan answers.
    pub query_id: QueryId,
    /// Winning engine + configuration.
    pub choice: PhysicalChoice,
    /// Winning fact-predicate order.
    pub fact_order: Vec<usize>,
    /// Winning estimate.
    pub est: CostBreakdown,
    /// Winning estimated seconds.
    pub seconds: f64,
    /// Estimated LINEORDER selectivity.
    pub est_selectivity: f64,
    /// The winner's estimate tree.
    pub explain: Explain,
    /// Every candidate's `(label, estimated seconds)`, cheapest first.
    pub ranking: Vec<(String, f64)>,
}

impl Plan {
    /// The column-engine configuration when the winner is the column
    /// engine.
    pub fn engine_config(&self) -> Option<EngineConfig> {
        match self.choice {
            PhysicalChoice::Column(cfg) => Some(cfg),
            PhysicalChoice::Row(_) => None,
        }
    }

    /// The row design when the winner is the row engine.
    pub fn row_design(&self) -> Option<RowDesign> {
        match self.choice {
            PhysicalChoice::Column(_) => None,
            PhysicalChoice::Row(d) => Some(d),
        }
    }

    /// Multi-line explain rendering: chosen plan, cost breakdown, and the
    /// candidate ranking.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} plan={} order={:?} est={:.4}s (cpu {:.4}s, io {:.2} MB, {} seeks) sel={:.2e}",
            self.query_id,
            self.choice.label(),
            self.fact_order,
            self.seconds,
            self.est.cpu_seconds,
            self.est.io_bytes as f64 / (1024.0 * 1024.0),
            self.est.seeks,
            self.est_selectivity,
        );
        out.push_str(&self.explain.render(1));
        let _ = writeln!(out, "  candidates (estimated):");
        for (label, secs) in &self.ranking {
            let _ = writeln!(out, "    {label:<8} {secs:>9.4}s");
        }
        out
    }

    /// Stable JSON encoding of the whole plan — the `EXPLAIN` payload the
    /// server protocol ships. Field names are part of the wire contract.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"query\": \"{}\", \"plan\": ", self.query_id);
        write_json_string(&mut out, &self.choice.label());
        let _ = write!(
            out,
            ", \"fact_order\": {:?}, \"est_seconds\": {:.6}, \"est_cpu_seconds\": {:.6}, \
             \"est_io_bytes\": {}, \"est_seeks\": {}, \"est_selectivity\": {:.6e}, \"tree\": {}",
            self.fact_order,
            self.seconds,
            self.est.cpu_seconds,
            self.est.io_bytes,
            self.est.seeks,
            self.est_selectivity,
            self.explain.to_json(),
        );
        out.push_str(", \"candidates\": [");
        for (i, (label, secs)) in self.ranking.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"plan\": ");
            write_json_string(&mut out, label);
            let _ = write!(out, ", \"est_seconds\": {secs:.6}}}");
        }
        out.push_str("]}");
        out
    }
}

/// The planner: a catalog plus cost parameters.
pub struct Planner {
    catalog: Catalog,
    params: CostParams,
}

/// The columns the paper's 13 queries touch (what `AiDb::QueryNeeded`
/// indexes), computed once — the paper set is constant.
type PaperNeeded = (Vec<&'static str>, Vec<(Dim, &'static str)>);

fn paper_needed() -> &'static PaperNeeded {
    static NEEDED: std::sync::OnceLock<PaperNeeded> = std::sync::OnceLock::new();
    NEEDED.get_or_init(|| {
        let mut fact: Vec<&'static str> = Vec::new();
        let mut dims: Vec<(Dim, &'static str)> = Vec::new();
        for q in cvr_data::queries::all_queries() {
            for c in q.fact_columns() {
                if !fact.contains(&c) {
                    fact.push(c);
                }
            }
            for p in &q.dim_predicates {
                if !dims.contains(&(p.dim, p.column)) {
                    dims.push((p.dim, p.column));
                }
            }
            for g in &q.group_by {
                if !dims.contains(&(g.dim, g.column)) {
                    dims.push((g.dim, g.column));
                }
            }
        }
        (fact, dims)
    })
}

/// Union of fact columns the paper queries of `flight` (1..=4) need — the
/// MV design's view definition. One shared definition serves both the
/// applicability gate and the catalog's view-size estimate
/// (`Catalog::build`), so they cannot drift apart.
pub(crate) fn mv_view_columns(flight: u8) -> &'static [&'static str] {
    static VIEWS: std::sync::OnceLock<[Vec<&'static str>; 4]> = std::sync::OnceLock::new();
    &VIEWS.get_or_init(|| {
        std::array::from_fn(|i| {
            let flight = (i + 1) as u8;
            let mut columns: Vec<&'static str> = Vec::new();
            for q in cvr_data::queries::all_queries().iter().filter(|q| q.id.flight == flight) {
                for c in q.fact_columns() {
                    if !columns.contains(&c) {
                        columns.push(c);
                    }
                }
            }
            columns
        })
    })[(flight - 1) as usize]
}

impl Planner {
    /// A planner over `catalog` with explicit parameters.
    pub fn with_params(catalog: Catalog, params: CostParams) -> Planner {
        Planner { catalog, params }
    }

    /// A planner over `catalog` with default parameters (paper disk model,
    /// `cpu_scale` 5, default CPU rates).
    pub fn new(catalog: Catalog) -> Planner {
        Planner::with_params(catalog, CostParams::default())
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cost parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Estimated LINEORDER selectivity of `q` (delegates to the catalog).
    pub fn estimate_selectivity(&self, q: &SsbQuery) -> f64 {
        self.catalog.selectivity(q)
    }

    /// The fact-predicate evaluation order the statistics recommend: most
    /// selective first (ties keep declaration order).
    pub fn fact_order(&self, q: &SsbQuery) -> Vec<usize> {
        let mut order: Vec<usize> = (0..q.fact_predicates.len()).collect();
        let sels: Vec<f64> =
            q.fact_predicates.iter().map(|p| self.catalog.fact_pred_selectivity(p)).collect();
        order.sort_by(|&a, &b| sels[a].partial_cmp(&sels[b]).unwrap().then(a.cmp(&b)));
        order
    }

    /// Row designs applicable to `q`.
    pub fn applicable_row_designs(&self, q: &SsbQuery) -> Vec<RowDesign> {
        let (paper_fact, paper_dim) = paper_needed();
        RowDesign::EXTENDED
            .into_iter()
            .filter(|d| match d {
                // Views exist per *paper* flight and hold only the columns
                // those queries read.
                RowDesign::MaterializedViews => {
                    (1..=4).contains(&q.id.flight) && {
                        let view = mv_view_columns(q.id.flight);
                        q.fact_columns().iter().all(|c| view.contains(c))
                    }
                }
                // Index-only plans need every touched column indexed; the
                // build indexes what some paper query touches.
                RowDesign::IndexOnly => {
                    q.fact_columns().iter().all(|c| paper_fact.contains(c))
                        && q.dim_predicates.iter().all(|p| paper_dim.contains(&(p.dim, p.column)))
                        && q.group_by.iter().all(|g| paper_dim.contains(&(g.dim, g.column)))
                }
                // The super-tuple VP planner asserts at least one
                // restriction.
                RowDesign::SuperVp => !q.dim_predicates.is_empty() || !q.fact_predicates.is_empty(),
                _ => true,
            })
            .collect()
    }

    /// Every applicable candidate, costed, cheapest first.
    pub fn candidates(&self, q: &SsbQuery) -> Vec<Candidate> {
        let order = self.fact_order(q);
        let mut out = Vec::new();
        for shape in [PlanShape::Invisible, PlanShape::LateJoin, PlanShape::Early] {
            for compressed in [true, false] {
                let (est, mut explain, ws) = self.cost_column(q, shape, compressed, &order);
                // Distinct bytes, not summed charges: a page is read from
                // the modeled disk once per run however many phases touch
                // it.
                let est = CostBreakdown { io_bytes: ws.total(), ..est };
                let est = self.params.pool_adjust(est, ws.total());
                let seconds = est.seconds(&self.params);
                explain.est_cost_seconds = Some(seconds);
                out.push(Candidate {
                    choice: PhysicalChoice::Column(shape.config(compressed)),
                    fact_order: order.clone(),
                    seconds,
                    est,
                    explain,
                });
            }
        }
        for design in self.applicable_row_designs(q) {
            let (est, mut explain, ws) = self.cost_row(q, design, &order);
            let est = CostBreakdown { io_bytes: ws.total(), ..est };
            let est = self.params.pool_adjust(est, ws.total());
            let seconds = est.seconds(&self.params);
            explain.est_cost_seconds = Some(seconds);
            out.push(Candidate {
                choice: PhysicalChoice::Row(design),
                fact_order: order.clone(),
                seconds,
                est,
                explain,
            });
        }
        out.sort_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap());
        out
    }

    /// Pick the cheapest candidate for `q`.
    pub fn plan(&self, q: &SsbQuery) -> Plan {
        let candidates = self.candidates(q);
        let ranking: Vec<(String, f64)> =
            candidates.iter().map(|c| (c.choice.label(), c.seconds)).collect();
        let best = candidates.into_iter().next().expect("search space is never empty");
        Plan {
            query_id: q.id,
            choice: best.choice,
            fact_order: best.fact_order,
            est: best.est,
            seconds: best.seconds,
            est_selectivity: self.estimate_selectivity(q),
            explain: best.explain,
            ranking,
        }
    }

    // ---------------------------------------------------------------------
    // Column-engine costing
    // ---------------------------------------------------------------------

    /// Sequential scan of one stored column, CPU priced by its encoding
    /// (word-parallel kernels over packed words, run-at-a-time over RLE).
    fn scan_col(
        &self,
        stats: &ColumnStats,
        compressed: bool,
        ws: &mut WorkingSet,
    ) -> CostBreakdown {
        let r = &self.params.rates;
        ws.touch(&stats.name, stats.bytes(compressed));
        let mut c = seq_scan(stats.bytes(compressed));
        c.cpu_seconds += if compressed {
            match stats.encoding {
                EncodingKind::Rle => stats.rle_runs.unwrap_or(stats.rows) as f64 * r.rle_run,
                EncodingKind::Packed | EncodingKind::Dict => {
                    let lanes = stats.packed_lanes.unwrap_or(8).max(1) as f64;
                    (stats.rows as f64 / lanes) * r.swar_word
                }
                EncodingKind::Plain => stats.rows as f64 * r.scalar_value,
            }
        } else {
            stats.rows as f64 * r.scalar_value
        };
        c
    }

    /// Scan of a fact FK column probed by a hash key set (the invisible
    /// join's fallback, and the late join's first full probe): the kernel
    /// rate is replaced by a per-value probe — except over RLE, where the
    /// engines probe run-at-a-time.
    fn scan_col_hash_probe(
        &self,
        stats: &ColumnStats,
        compressed: bool,
        ws: &mut WorkingSet,
    ) -> CostBreakdown {
        let r = &self.params.rates;
        ws.touch(&stats.name, stats.bytes(compressed));
        let mut c = seq_scan(stats.bytes(compressed));
        c.cpu_seconds += if compressed && stats.encoding == EncodingKind::Rle {
            stats.rle_runs.unwrap_or(stats.rows) as f64 * (r.rle_run + r.hash_probe)
        } else {
            stats.rows as f64 * r.probe_scan_value
        };
        c
    }

    /// Positional gather from one stored column, recorded in the working
    /// set at its touched-page footprint. `span` is the fraction of the
    /// file the positions can fall in: the fact projection is sorted by
    /// `lo_orderdate`, so a date-restricted query's surviving positions
    /// cluster inside the qualifying date range instead of scattering over
    /// the whole file (pass 1.0 when unrestricted).
    fn gather_col(
        &self,
        stats: &ColumnStats,
        compressed: bool,
        k: u64,
        rows: u64,
        span: f64,
        ws: &mut WorkingSet,
    ) -> CostBreakdown {
        let bytes = ((stats.bytes(compressed) as f64) * span.clamp(0.0, 1.0)).ceil() as u64;
        let g = gather(k, ((rows as f64) * span).ceil() as u64, bytes, &self.params.rates);
        ws.touch(&stats.name, g.io_bytes.min(stats.bytes(compressed)));
        g
    }

    /// The fraction of the (orderdate-sorted) fact files a query's
    /// surviving positions can span.
    fn fact_span(&self, q: &SsbQuery) -> f64 {
        self.catalog.dim_selectivity(q, Dim::Date).clamp(0.0, 1.0)
    }

    /// Phase-1 work for one restricted dimension: predicate scans over the
    /// (small) dimension columns, plus key collection when the match set is
    /// not expected to be contiguous.
    fn dim_phase1(
        &self,
        q: &SsbQuery,
        d: Dim,
        compressed: bool,
        build_keys: bool,
        ws: &mut WorkingSet,
    ) -> (CostBreakdown, bool) {
        let r = &self.params.rates;
        let stats = self.catalog.dim(d);
        let mut c = CostBreakdown::default();
        for p in q.dim_predicates_on(d) {
            c.add(self.scan_col(stats.column(p.column), compressed, ws));
        }
        let contiguous = self.catalog.likely_contiguous(q, d);
        if build_keys || !contiguous {
            let k = (self.catalog.dim_selectivity(q, d) * stats.rows as f64).ceil() as u64;
            let key = stats.column(match d {
                Dim::Customer => "c_custkey",
                Dim::Supplier => "s_suppkey",
                Dim::Part => "p_partkey",
                Dim::Date => "d_datekey",
            });
            let rows = stats.rows;
            c.add(self.gather_col(key, compressed, k, rows, 1.0, ws));
            c.cpu_seconds += k as f64 * r.hash_probe; // build the key set
        }
        (c, contiguous)
    }

    /// Group/measure extraction shared by the two late-materialized shapes:
    /// gather FKs and measures at the `k` surviving positions, extract the
    /// group attributes, aggregate.
    fn phase3(
        &self,
        q: &SsbQuery,
        k: u64,
        compressed: bool,
        ws: &mut WorkingSet,
        explain: &mut Explain,
    ) -> CostBreakdown {
        let r = &self.params.rates;
        let n = self.catalog.fact_rows();
        let span = self.fact_span(q);
        let mut c = CostBreakdown::default();
        let mut seen: Vec<Dim> = Vec::new();
        for g in &q.group_by {
            if !seen.contains(&g.dim) {
                seen.push(g.dim);
                let fk = self.catalog.fact.column(g.dim.fact_fk_column());
                c.add(self.gather_col(fk, compressed, k, n, span, ws));
                if g.dim == Dim::Date {
                    // Non-dense keys: build the key → position join map.
                    let rows = self.catalog.dim(Dim::Date).rows;
                    c.cpu_seconds += (rows + k) as f64 * r.hash_probe;
                }
            }
            let dstats = self.catalog.dim(g.dim);
            let col = dstats.column(g.column);
            let rows = dstats.rows;
            // Group columns extract as dictionary/FoR *codes* (no value
            // clones); the gather itself is priced inside gather_col. The
            // engine opens each group column's decode table even when the
            // estimate says no row survives, so charge at least one page
            // touch per group column (k = 0 priced these files as free,
            // which made every near-empty column plan look cheaper than
            // it measures).
            c.add(self.gather_col(col, compressed, k.min(rows).max(1), rows, 1.0, ws));
        }
        for m in q.aggregate.fact_columns() {
            let col = self.catalog.fact.column(m);
            c.add(self.gather_col(col, compressed, k, n, span, ws));
        }
        // The aggregation tail. Code-level (compose a u64 group id per
        // row, bump a direct slot / u64 hash entry — recalibratable from
        // BENCH_agg.json) whenever every group column has a code space:
        // integer columns always, string columns only when dictionary-
        // encoded. Plain-string group columns fall back to the Value-keyed
        // grouper, which pays a key clone per row on top of the Value
        // extraction clones. Group decoding happens once per group, which
        // is noise next to the per-row terms.
        let code_level = q.group_by.iter().all(|g| {
            let cs = self.catalog.dim(g.dim).column(g.column);
            let is_int = cs.histogram.is_some();
            is_int || (compressed && cs.encoding == EncodingKind::Dict)
        });
        c.cpu_seconds += if code_level {
            k as f64 * r.agg_code_row
        } else {
            k as f64 * (r.agg_row + 2.0 * q.group_by.len() as f64 * r.value_clone)
        };
        explain.push(
            Explain::node(
                "extract-aggregate",
                format!(
                    "{}: {} group col(s), {} measure(s)",
                    if code_level { "code-level" } else { "value-keyed" },
                    q.group_by.len(),
                    q.aggregate.fact_columns().len()
                ),
            )
            .rows(k)
            .cost(c.seconds(&self.params)),
        );
        c
    }

    fn cost_column(
        &self,
        q: &SsbQuery,
        shape: PlanShape,
        compressed: bool,
        order: &[usize],
    ) -> (CostBreakdown, Explain, WorkingSet) {
        let mut ws = WorkingSet::default();
        let r = self.params.rates;
        let n = self.catalog.fact_rows();
        let sel_total = self.catalog.selectivity(q);
        let k_final = ((n as f64 * sel_total).ceil() as u64).min(n);
        let mut explain = Explain::node(
            "column-plan",
            format!(
                "{} ({}, {})",
                shape.config(compressed).code(),
                shape.name(),
                if compressed { "compressed" } else { "plain" }
            ),
        )
        .rows(k_final);
        let mut c = CostBreakdown::default();
        match shape {
            PlanShape::Invisible => {
                for d in q.restricted_dims() {
                    let (dc, contiguous) = self.dim_phase1(q, d, compressed, false, &mut ws);
                    c.add(dc);
                    let fk = self.catalog.fact.column(d.fact_fk_column());
                    let probe = if contiguous {
                        self.scan_col(fk, compressed, &mut ws)
                    } else {
                        self.scan_col_hash_probe(fk, compressed, &mut ws)
                    };
                    let d_sel = self.catalog.dim_selectivity(q, d);
                    explain.push(
                        Explain::node(
                            "probe",
                            format!(
                                "{} ({}, {:.2} MB, {}) sel {:.2e}",
                                d.fact_fk_column(),
                                if compressed { fk.encoding.label() } else { "plain" },
                                fk.bytes(compressed) as f64 / (1024.0 * 1024.0),
                                if contiguous { "between-rewrite" } else { "hash-set" },
                                d_sel,
                            ),
                        )
                        .rows((n as f64 * d_sel).ceil() as u64)
                        .cost(probe.seconds(&self.params)),
                    );
                    c.add(probe);
                }
                for &i in order {
                    let p = &q.fact_predicates[i];
                    let col = self.catalog.fact.column(p.column);
                    let sel = self.catalog.fact_pred_selectivity(p);
                    let sc = self.scan_col(col, compressed, &mut ws);
                    explain.push(
                        Explain::node("scan", format!("{} sel {sel:.2e}", p.column))
                            .rows((n as f64 * sel).ceil() as u64)
                            .cost(sc.seconds(&self.params)),
                    );
                    c.add(sc);
                }
                let p3 = self.phase3(q, k_final, compressed, &mut ws, &mut explain);
                c.add(p3);
            }
            PlanShape::LateJoin => {
                let mut running = n as f64;
                // Unlike the invisible join (which stays on bitmap words),
                // the late join materializes explicit position vectors
                // between steps; charge every intermediate position.
                let mut poslist_positions = 0.0;
                for &i in order {
                    let p = &q.fact_predicates[i];
                    let sc = self.scan_col(self.catalog.fact.column(p.column), compressed, &mut ws);
                    running *= self.catalog.fact_pred_selectivity(p);
                    poslist_positions += running;
                    explain.push(
                        Explain::node("scan", p.column)
                            .rows(running.ceil() as u64)
                            .cost(sc.seconds(&self.params)),
                    );
                    c.add(sc);
                }
                // Restricted dims, most selective first (the engine's own
                // order).
                let mut dims = q.restricted_dims();
                dims.sort_by(|&a, &b| {
                    self.catalog
                        .dim_selectivity(q, a)
                        .partial_cmp(&self.catalog.dim_selectivity(q, b))
                        .unwrap()
                });
                let mut first = q.fact_predicates.is_empty();
                let span = self.fact_span(q);
                for d in dims {
                    // The late join always materializes the matching keys
                    // to build its hash table, contiguous or not.
                    let (dc, _) = self.dim_phase1(q, d, compressed, true, &mut ws);
                    c.add(dc);
                    let dstats = self.catalog.dim(d);
                    let k_d = (self.catalog.dim_selectivity(q, d) * dstats.rows as f64).ceil();
                    c.cpu_seconds += k_d * r.hash_probe; // build side
                    let fk = self.catalog.fact.column(d.fact_fk_column());
                    if first {
                        c.add(self.scan_col_hash_probe(fk, compressed, &mut ws));
                        first = false;
                    } else {
                        c.add(self.gather_col(
                            fk,
                            compressed,
                            running.ceil() as u64,
                            n,
                            span,
                            &mut ws,
                        ));
                        c.cpu_seconds += running * r.hash_probe;
                    }
                    running *= self.catalog.dim_selectivity(q, d);
                    poslist_positions += running;
                    explain.push(
                        Explain::node("hash-join", d.fact_fk_column()).rows(running.ceil() as u64),
                    );
                }
                c.cpu_seconds += poslist_positions * r.poslist_touch;
                let p3 = self.phase3(q, k_final, compressed, &mut ws, &mut explain);
                c.add(p3);
            }
            PlanShape::Early => {
                let cols = q.fact_columns();
                for col in &cols {
                    let stats = self.catalog.fact.column(col);
                    ws.touch(&stats.name, stats.bytes(compressed));
                    let mut s = seq_scan(stats.bytes(compressed));
                    s.cpu_seconds += n as f64 * r.gather_value; // decode_all
                    c.add(s);
                }
                explain.push(
                    Explain::node("materialize", format!("{} fact column(s) up front", cols.len()))
                        .rows(n)
                        .cost(c.seconds(&self.params)),
                );
                for d in q.touched_dims() {
                    let dstats = self.catalog.dim(d);
                    let mut dim_cols: Vec<&str> = vec![match d {
                        Dim::Customer => "c_custkey",
                        Dim::Supplier => "s_suppkey",
                        Dim::Part => "p_partkey",
                        Dim::Date => "d_datekey",
                    }];
                    for p in q.dim_predicates_on(d) {
                        dim_cols.push(p.column);
                    }
                    for g in q.group_by.iter().filter(|g| g.dim == d) {
                        dim_cols.push(g.column);
                    }
                    for col in dim_cols {
                        ws.touch(&dstats.column(col).name, dstats.column(col).bytes(compressed));
                        let mut s = seq_scan(dstats.column(col).bytes(compressed));
                        s.cpu_seconds += dstats.rows as f64 * r.gather_value;
                        c.add(s);
                    }
                    c.cpu_seconds += dstats.rows as f64 * r.hash_probe;
                }
                // Row-style pipeline over early-stitched tuples.
                let width = cols.len() as f64;
                c.cpu_seconds += n as f64
                    * (width * r.value_clone
                        + q.touched_dims().len() as f64 * r.hash_probe
                        + q.fact_predicates.len() as f64 * r.scalar_value);
                // Even the row-style pipeline aggregates on composed group
                // ids now (interned per-dimension-row codes).
                c.cpu_seconds += k_final as f64 * r.agg_code_row;
                explain.push(
                    Explain::node("pipeline", format!("row-style over {n} early-stitched tuples"))
                        .rows(k_final),
                );
            }
        }
        (c, explain, ws)
    }

    // ---------------------------------------------------------------------
    // Row-engine costing
    // ---------------------------------------------------------------------

    fn cost_row(
        &self,
        q: &SsbQuery,
        design: RowDesign,
        order: &[usize],
    ) -> (CostBreakdown, Explain, WorkingSet) {
        let mut ws = WorkingSet::default();
        let r = self.params.rates;
        let n = self.catalog.fact_rows();
        let sizes = &self.catalog.row_sizes;
        let sel_total = self.catalog.selectivity(q);
        let k_final = ((n as f64 * sel_total).ceil() as u64).min(n);
        let fact_sel: f64 =
            q.fact_predicates.iter().map(|p| self.catalog.fact_pred_selectivity(p)).product();
        let mut explain =
            Explain::node("row-plan", format!("{} ({})", design.label(), design_name(design)))
                .rows(k_final);
        let mut c = CostBreakdown::default();

        // Shared tail: hash joins against filtered dimension heaps, in
        // selectivity order, then aggregation.
        let join_tail = |c: &mut CostBreakdown,
                         explain: &mut Explain,
                         ws: &mut WorkingSet,
                         start_rows: f64,
                         skip: &[Dim]| {
            let mut dims = q.touched_dims();
            dims.sort_by(|&a, &b| {
                self.catalog
                    .dim_selectivity(q, a)
                    .partial_cmp(&self.catalog.dim_selectivity(q, b))
                    .unwrap()
            });
            let mut running = start_rows;
            for d in dims {
                // A dim already applied through a bitmap and
                // contributing no group column is never joined by the
                // executor — its heap is not read.
                if skip.contains(&d) {
                    continue;
                }
                let dstats = self.catalog.dim(d);
                ws.touch(&format!("heap:{}", d.table_name()), sizes.dim_heap_bytes[&d]);
                c.add(seq_scan(sizes.dim_heap_bytes[&d]));
                c.cpu_seconds += dstats.rows as f64 * r.row_tuple;
                c.cpu_seconds += running * r.row_join_probe;
                running *= self.catalog.dim_selectivity(q, d);
                explain
                    .push(Explain::node("hash-join", d.table_name()).rows(running.ceil() as u64));
            }
            c.cpu_seconds += k_final as f64 * r.agg_row;
        };

        match design {
            RowDesign::Traditional | RowDesign::MaterializedViews => {
                let yf = self.catalog.year_fraction(q);
                // Per-tuple parse cost scales with tuple arity: a narrow
                // per-flight view row decodes a handful of fields, not 17.
                let (heap, width) = if design == RowDesign::Traditional {
                    (sizes.fact_heap_bytes, 1.0)
                } else {
                    let cols = mv_view_columns(q.id.flight).len() as f64;
                    (sizes.mv_view_bytes[(q.id.flight - 1) as usize], (cols / 17.0).max(0.2))
                };
                let bytes = (heap as f64 * yf) as u64;
                ws.touch("heap:fact", bytes);
                c.add(seq_scan(bytes));
                // Extra partitions beyond the first (seq_scan charged one).
                c.seeks += ((7.0 * yf).ceil() as u64).saturating_sub(1);
                let scanned = n as f64 * yf;
                c.cpu_seconds += scanned * r.row_tuple * width;
                explain.push(
                    Explain::node(
                        "seq-scan",
                        format!(
                            "{:.1} MB ({} of the year partitions)",
                            bytes as f64 / (1024.0 * 1024.0),
                            (7.0 * yf).ceil()
                        ),
                    )
                    .rows(scanned.ceil() as u64)
                    .cost(c.seconds(&self.params)),
                );
                join_tail(&mut c, &mut explain, &mut ws, scanned * fact_sel, &[]);
            }
            RowDesign::TraditionalBitmap => {
                // Index bitmaps for *indexed* fact predicates and the
                // DATE key range, then random heap fetches for survivors.
                // Only `BITMAP_COLUMNS` carry an index — a predicate on
                // any other fact column (e.g. lo_tax) never enters the
                // bitmap and filters tuples only after the fetch.
                let mut indexed_fact_sel = 1.0;
                let mut post_sel = 1.0;
                let date_sel = self.catalog.dim_selectivity(q, Dim::Date);
                for &i in order {
                    let p = &q.fact_predicates[i];
                    let psel = self.catalog.fact_pred_selectivity(p);
                    if !cvr_row::designs::traditional::BITMAP_COLUMNS.contains(&p.column) {
                        post_sel *= psel;
                        continue;
                    }
                    indexed_fact_sel *= psel;
                    let entries = n as f64 * psel;
                    let bytes = index_scan_bytes(entries);
                    ws.touch(&format!("idx:{}", p.column), bytes);
                    c.add(seq_scan(bytes));
                    c.cpu_seconds += entries * r.index_leaf_entry;
                    explain.push(
                        Explain::node("index-scan", format!("range scan {}", p.column))
                            .rows(entries.ceil() as u64),
                    );
                }
                let mut bitmap_sel = indexed_fact_sel;
                if date_sel < 1.0 {
                    bitmap_sel *= date_sel;
                }
                if date_sel < 1.0 {
                    let entries = n as f64 * date_sel;
                    let bytes = index_scan_bytes(entries);
                    ws.touch("idx:lo_orderdate", bytes);
                    c.add(seq_scan(bytes));
                    c.cpu_seconds += entries * r.index_leaf_entry;
                    explain.push(
                        Explain::node("index-scan", "range scan lo_orderdate")
                            .rows(entries.ceil() as u64),
                    );
                }
                // Non-DATE dimension restrictions also enter the bitmap,
                // through per-key FK-index probes — the executor skips a
                // dim only when its matching-key set exceeds its 2000-key
                // optimizer threshold. Omitting these from the model left
                // the heap fetch priced at fact_sel x date_sel while the
                // real bitmap was thinned by the full query selectivity —
                // the ~10x overpricing behind the Q9.3 regret tail. Each
                // probe descends to one leaf, sorted-key probes visit
                // leaves in ascending order, and internal pages stay
                // pool-resident — so the probe phase is a Cardenas–Yao
                // gather of `keys` starting points over the index's *leaf
                // pages* (one 32 KB page per node, ~1365 entries each).
                //
                // `line_sel` tracks the per-LINE part of the bitmap:
                // lo_partkey and lo_suppkey are drawn per line, while
                // lo_custkey and lo_orderdate are constant across the
                // lines of an order. The distinction drives the heap-fetch
                // run model below.
                let mut line_sel = indexed_fact_sel;
                let mut applied: Vec<Dim> = Vec::new();
                if date_sel < 1.0 {
                    applied.push(Dim::Date);
                }
                for d in q.touched_dims() {
                    if d == Dim::Date {
                        continue;
                    }
                    let dsel = self.catalog.dim_selectivity(q, d);
                    if dsel >= 1.0 {
                        continue;
                    }
                    let keys = self.catalog.dim(d).rows as f64 * dsel;
                    if keys > 2_000.0 {
                        continue;
                    }
                    bitmap_sel *= dsel;
                    if matches!(d, Dim::Part | Dim::Supplier) {
                        line_sel *= dsel;
                    }
                    applied.push(d);
                    if keys < 1.0 {
                        // The estimated key set is empty: the bitmap ANDs
                        // to nothing and no probe I/O happens.
                        continue;
                    }
                    let entries = n as f64 * dsel;
                    let index_bytes = index_scan_bytes(n as f64);
                    let probe = gather(keys.ceil() as u64, n, index_bytes, &r);
                    ws.touch(&format!("idx:{}", d.fact_fk_column()), probe.io_bytes);
                    c.add(probe);
                    c.cpu_seconds += entries * r.index_leaf_entry;
                    explain.push(
                        Explain::node("index-scan", format!("FK probes {}", d.fact_fk_column()))
                            .rows(entries.ceil() as u64),
                    );
                }
                // Bitmap-applied dims with no group column are never
                // joined afterwards.
                let skip: Vec<Dim> = applied
                    .iter()
                    .copied()
                    .filter(|d| !q.group_by.iter().any(|g| g.dim == *d))
                    .collect();
                let k = ((n as f64 * bitmap_sel).ceil() as u64).min(n);
                // The heap sits in generation (orderkey) order — NOT
                // date-sorted — so survivors scatter across the whole
                // file and the fetch is a full-file gather. The lines of
                // one order are adjacent, though, and share lo_orderdate
                // and lo_custkey, so restrictions on those *per-order*
                // columns leave survivors in runs of `lines_per_order`
                // adjacent tuples: page and seek counts follow the run
                // *seeds*, not k. Per-line thinning (fact measures,
                // lo_partkey / lo_suppkey bitmaps) breaks runs apart and
                // pushes the seed count back toward k.
                let orders = self.catalog.fact.column("lo_orderkey").max.unwrap_or(1).max(1) as f64;
                let lines_per_order = (n as f64 / orders).max(1.0);
                let run = (lines_per_order * line_sel).max(1.0);
                let seeds = ((k as f64 / run).ceil() as u64).min(k);
                let heap_fetch = gather(seeds, n, sizes.fact_heap_bytes, &r);
                ws.touch("heap:fact", heap_fetch.io_bytes.min(sizes.fact_heap_bytes));
                let fetch_secs = heap_fetch.seconds(&self.params);
                c.add(heap_fetch);
                // Every surviving tuple is still parsed.
                c.cpu_seconds += k as f64 * r.row_tuple;
                explain.push(
                    Explain::node("bitmap-heap-fetch", "fetch surviving tuples")
                        .rows(k)
                        .cost(fetch_secs),
                );
                // Unindexed fact predicates filter the fetched tuples
                // before the joins.
                join_tail(&mut c, &mut explain, &mut ws, k as f64 * post_sel, &skip);
            }
            RowDesign::VerticalPartitioning | RowDesign::SuperVp => {
                let cols = q.fact_columns();
                let mut joins = 0u64;
                for col in &cols {
                    let stats = self.catalog.fact.column(col);
                    let per_value = if design == RowDesign::VerticalPartitioning {
                        // header (8) + pos (4) + value (4 or 1+len).
                        if stats.histogram.is_some() {
                            16.0
                        } else {
                            13.0 + stats.plain_bytes as f64 / stats.rows.max(1) as f64
                        }
                    } else {
                        // Super tuples: just the packed values.
                        if stats.histogram.is_some() {
                            4.0
                        } else {
                            stats.plain_bytes as f64 / stats.rows.max(1) as f64
                        }
                    };
                    ws.touch(&format!("vp:{col}"), (n as f64 * per_value) as u64);
                    c.add(seq_scan((n as f64 * per_value) as u64));
                    c.cpu_seconds += n as f64 * r.tuple_value;
                    joins += 1;
                }
                // Record-id hash joins glue the columns back together; each
                // join builds and probes ~n entries.
                let rid_joins = joins.saturating_sub(1) as f64;
                c.cpu_seconds += rid_joins * n as f64 * (r.hash_probe + r.row_join_probe);
                explain.push(
                    Explain::node(
                        "rid-join",
                        format!("{} column scans, {rid_joins:.0} rid joins", cols.len()),
                    )
                    .rows(n)
                    .cost(c.seconds(&self.params)),
                );
                join_tail(&mut c, &mut explain, &mut ws, n as f64 * fact_sel, &[]);
            }
            RowDesign::IndexOnly => {
                let cols = q.fact_columns();
                for col in &cols {
                    let stats = self.catalog.fact.column(col);
                    let pred_sel = q
                        .fact_predicates
                        .iter()
                        .find(|p| p.column == *col)
                        .map(|p| self.catalog.fact_pred_selectivity(p))
                        .unwrap_or(1.0);
                    let entries = n as f64 * pred_sel;
                    ws.touch(&format!("idx:{col}"), (entries * 20.0) as u64);
                    c.add(seq_scan((entries * 20.0) as u64));
                    c.cpu_seconds += entries * r.index_entry;
                    let _ = stats;
                }
                // The System X pathology: rid joins before any dimension
                // filtering, so every join moves ~n tuples.
                let rid_joins = cols.len().saturating_sub(1) as f64;
                c.cpu_seconds += rid_joins * n as f64 * (r.hash_probe + r.row_join_probe);
                explain.push(
                    Explain::node(
                        "rid-join",
                        format!("{} index scans rid-joined before filtering", cols.len()),
                    )
                    .rows(n)
                    .cost(c.seconds(&self.params)),
                );
                join_tail(&mut c, &mut explain, &mut ws, n as f64 * fact_sel, &[]);
            }
        }
        (c, explain, ws)
    }
}

fn design_name(d: RowDesign) -> &'static str {
    match d {
        RowDesign::Traditional => "partitioned heap",
        RowDesign::TraditionalBitmap => "bitmap-biased",
        RowDesign::MaterializedViews => "per-flight view",
        RowDesign::VerticalPartitioning => "vertical partitioning",
        RowDesign::IndexOnly => "index-only",
        RowDesign::SuperVp => "super-tuple VP",
    }
}

/// The three column-engine plan shapes the planner searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// The invisible join (`..I.L`).
    Invisible,
    /// The classic late-materialized hash join (`..i.L`).
    LateJoin,
    /// Early materialization (`...l`).
    Early,
}

impl PlanShape {
    /// The [`EngineConfig`] running this shape at one compression setting
    /// (block iteration always on — the planner never picks the
    /// deliberately-slow tuple-at-a-time mode).
    pub fn config(self, compressed: bool) -> EngineConfig {
        let code = match (self, compressed) {
            (PlanShape::Invisible, true) => "tICL",
            (PlanShape::Invisible, false) => "tIcL",
            (PlanShape::LateJoin, true) => "tiCL",
            (PlanShape::LateJoin, false) => "ticL",
            (PlanShape::Early, true) => "tICl",
            (PlanShape::Early, false) => "tIcl",
        };
        EngineConfig::parse(code)
    }

    /// Human name.
    pub fn name(self) -> &'static str {
        match self {
            PlanShape::Invisible => "invisible join",
            PlanShape::LateJoin => "late-materialized join",
            PlanShape::Early => "early materialization",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvr_core::ColumnEngine;
    use cvr_data::gen::SsbConfig;
    use cvr_data::queries::{all_queries, query};
    use cvr_data::workload::WorkloadConfig;
    use std::sync::Arc;

    fn planner() -> &'static Planner {
        static P: std::sync::OnceLock<Planner> = std::sync::OnceLock::new();
        P.get_or_init(|| {
            let tables = Arc::new(SsbConfig { sf: 0.01, seed: 21 }.generate());
            Planner::new(Catalog::build(&ColumnEngine::new(tables)))
        })
    }

    #[test]
    fn every_paper_query_gets_a_plan() {
        let p = planner();
        for q in all_queries() {
            let plan = p.plan(&q);
            assert!(plan.seconds > 0.0, "{}", q.id);
            assert_eq!(plan.fact_order.len(), q.fact_predicates.len());
            assert!(!plan.ranking.is_empty());
            // The ranking is sorted and the winner heads it.
            assert_eq!(plan.ranking[0].0, plan.choice.label());
            assert!(plan.ranking.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn planner_prefers_compression_and_late_materialization() {
        let p = planner();
        for q in all_queries() {
            let plan = p.plan(&q);
            if let Some(cfg) = plan.engine_config() {
                assert!(cfg.compression, "{}: picked {}", q.id, cfg.code());
                assert!(cfg.late_materialization, "{}: picked {}", q.id, cfg.code());
            }
        }
    }

    #[test]
    fn fact_order_puts_most_selective_first() {
        let p = planner();
        let q = query(1, 2); // discount 4-6 (~3/11) then quantity 26-35 (~10/50)
        let order = p.fact_order(&q);
        let sels: Vec<f64> =
            q.fact_predicates.iter().map(|fp| p.catalog().fact_pred_selectivity(fp)).collect();
        assert!(sels[order[0]] <= sels[order[1]]);
    }

    #[test]
    fn mv_and_ai_are_gated_for_generated_queries() {
        let p = planner();
        for q in WorkloadConfig::with_count(16).generate() {
            let designs = p.applicable_row_designs(&q);
            assert!(
                !designs.contains(&RowDesign::MaterializedViews),
                "{}: MV views only exist for paper flights",
                q.id
            );
            assert!(designs.contains(&RowDesign::Traditional));
        }
        // ... but stay available for the paper queries themselves.
        let designs = p.applicable_row_designs(&query(2, 1));
        assert!(designs.contains(&RowDesign::MaterializedViews));
        assert!(designs.contains(&RowDesign::IndexOnly));
    }

    #[test]
    fn generated_queries_get_plans_too() {
        let p = planner();
        for q in WorkloadConfig::with_count(32).generate() {
            let plan = p.plan(&q);
            assert!(plan.seconds.is_finite() && plan.seconds > 0.0, "{}", q.id);
            let rendered = plan.render();
            assert!(rendered.contains("candidates"), "{rendered}");
        }
    }

    #[test]
    fn explain_renders_the_winning_tree() {
        let p = planner();
        let plan = p.plan(&query(3, 1));
        let s = plan.render();
        assert!(s.contains("plan="), "{s}");
        assert!(s.contains("sel="), "{s}");
        for (label, _) in &plan.ranking {
            assert!(s.contains(label.as_str()), "{s} missing {label}");
        }
    }

    #[test]
    fn plan_json_has_stable_fields_and_full_ranking() {
        let p = planner();
        let plan = p.plan(&query(3, 1));
        let j = plan.to_json();
        for field in [
            "\"query\"",
            "\"plan\"",
            "\"fact_order\"",
            "\"est_seconds\"",
            "\"est_selectivity\"",
            "\"tree\"",
            "\"candidates\"",
            "\"op\"",
            "\"est_rows\"",
        ] {
            assert!(j.contains(field), "{j} missing {field}");
        }
        // Every ranked candidate label appears in the JSON.
        assert_eq!(j.matches("{\"plan\": ").count(), plan.ranking.len());
        // The winner's tree root carries the total estimate.
        assert!(plan.explain.est_cost_seconds.is_some());
        assert!(plan.explain.est_rows.is_some());
    }
}
