//! Property tests for the index substrate, each structure checked against a
//! std-library model.

use cvr_data::value::Value;
use cvr_index::bitmap::{BitmapIndex, RidBitmap};
use cvr_index::bloom::BloomFilter;
use cvr_index::btree::{ikey, BPlusTree, Key};
use cvr_index::hashidx::{IntHashMap, IntHashSet};
use cvr_storage::io::IoSession;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn lo(range: (i64, i64)) -> i64 {
    range.0
}

fn hi(range: (i64, i64)) -> i64 {
    range.0 + range.1
}

proptest! {
    #[test]
    fn btree_matches_sorted_multiset_model(
        entries in prop::collection::vec((0i64..500, 0u32..10_000), 0..400),
        order in 4usize..64,
        probe in 0i64..600,
        range in (0i64..500, 0i64..200),
    ) {
        // The tree is a multiset: duplicate (key, rid) pairs are kept, like
        // an unclustered index over a column with repeated values.
        let mut tree = BPlusTree::with_order(order);
        let mut model: Vec<(i64, u32)> = Vec::new();
        for &(k, rid) in &entries {
            tree.insert(ikey(k), rid);
            model.push((k, rid));
        }
        model.sort_unstable();
        let io = IoSession::unmetered();
        // Point lookups. Rid order within one key is unspecified (like any
        // secondary index); compare as multisets.
        let mut got: Vec<u32> = tree.lookup(&ikey(probe), &io);
        got.sort_unstable();
        let want: Vec<u32> =
            model.iter().filter(|(k, _)| *k == probe).map(|&(_, r)| r).collect();
        prop_assert_eq!(got, want);
        // Range scans (inclusive): key-sorted output, rid order within a key
        // unspecified.
        let raw = tree.range_scan(Some(&ikey(lo(range))), Some(&ikey(hi(range))), &io);
        let keys_only: Vec<i64> = raw.iter().map(|(k, _)| k[0].as_int()).collect();
        prop_assert!(keys_only.windows(2).all(|w| w[0] <= w[1]), "output must be key-sorted");
        let mut got: Vec<(i64, u32)> =
            raw.into_iter().map(|(k, r)| (k[0].as_int(), r)).collect();
        got.sort_unstable();
        let want: Vec<(i64, u32)> = model
            .iter()
            .filter(|(k, _)| (lo(range)..=hi(range)).contains(k))
            .copied()
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_bulk_load_equals_inserts(
        entries in prop::collection::vec((0i64..300, 0u32..10_000), 0..300),
        order in 4usize..48,
    ) {
        let mut inserted = BPlusTree::with_order(order);
        for (k, rid) in entries.clone() {
            inserted.insert(ikey(k), rid);
        }
        let bulk = BPlusTree::bulk_load_with_order(
            &mut entries.iter().map(|&(k, r)| (ikey(k), r)).collect::<Vec<(Key, u32)>>(),
            order,
        );
        let io = IoSession::unmetered();
        // Same multiset of entries (rid order within duplicate keys is
        // unspecified for the insert path).
        let mut a: Vec<(i64, u32)> =
            inserted.full_scan(&io).map(|(k, r)| (k[0].as_int(), r)).collect();
        let mut b: Vec<(i64, u32)> =
            bulk.full_scan(&io).map(|(k, r)| (k[0].as_int(), r)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn btree_composite_prefix_scan(
        entries in prop::collection::vec(("[a-d]{1}", 0i64..50), 0..200),
        probe in "[a-e]{1}",
    ) {
        let mut tree = BPlusTree::with_order(8);
        for (i, (s, k)) in entries.iter().enumerate() {
            tree.insert(vec![Value::str(s.as_str()), Value::Int(*k)], i as u32);
        }
        let io = IoSession::unmetered();
        let bound: Key = vec![Value::str(probe.as_str())];
        let got = tree.range_scan(Some(&bound), Some(&bound), &io);
        let want = entries.iter().filter(|(s, _)| *s == probe).count();
        prop_assert_eq!(got.len(), want);
        for (k, _) in got {
            prop_assert_eq!(k[0].as_str(), probe.as_str());
        }
    }

    #[test]
    fn bitmap_ops_match_hashset_model(
        xs in prop::collection::btree_set(0u32..2_000, 0..300),
        ys in prop::collection::btree_set(0u32..2_000, 0..300),
    ) {
        let a = RidBitmap::from_rids(2_000, xs.iter().copied());
        let b = RidBitmap::from_rids(2_000, ys.iter().copied());
        let mut and = a.clone();
        and.and_with(&b);
        let mut or = a.clone();
        or.or_with(&b);
        let want_and: Vec<u32> = xs.intersection(&ys).copied().collect();
        let want_or: Vec<u32> = xs.union(&ys).copied().collect();
        prop_assert_eq!(and.to_vec(), want_and);
        prop_assert_eq!(or.to_vec(), want_or);
        prop_assert_eq!(a.count() as usize, xs.len());
    }

    #[test]
    fn bitmap_index_select_matches_filter(
        col in prop::collection::vec(0i64..20, 1..500),
        wanted in prop::collection::btree_set(0i64..25, 0..6),
    ) {
        let idx = BitmapIndex::build(&col);
        let io = IoSession::unmetered();
        let got = idx.select(|v| wanted.contains(&v), &io).to_vec();
        let want: Vec<u32> = col
            .iter()
            .enumerate()
            .filter(|(_, v)| wanted.contains(v))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn int_hash_set_matches_std(keys in prop::collection::vec(-1_000i64..1_000, 0..600)) {
        let ours = IntHashSet::from_keys(keys.iter().copied());
        let std: HashSet<i64> = keys.iter().copied().collect();
        prop_assert_eq!(ours.len(), std.len());
        for k in -1_050i64..1_050 {
            prop_assert_eq!(ours.contains(k), std.contains(&k), "key {}", k);
        }
    }

    #[test]
    fn int_hash_map_matches_std(pairs in prop::collection::vec((-500i64..500, any::<u32>()), 0..400)) {
        let ours = IntHashMap::from_pairs(pairs.iter().copied());
        let mut std: HashMap<i64, u32> = HashMap::new();
        for &(k, v) in &pairs {
            std.entry(k).or_insert(v); // first-wins, like IntHashMap
        }
        for k in -550i64..550 {
            prop_assert_eq!(ours.get(k), std.get(&k).copied());
        }
    }

    #[test]
    fn bloom_has_no_false_negatives(keys in prop::collection::vec(any::<i64>(), 0..500)) {
        let mut f = BloomFilter::new(keys.len().max(8), 0.02);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }
}
