//! Record-id bitmaps and per-value bitmap indexes.
//!
//! Used in two places in the study:
//!
//! * the row engine's **"traditional (bitmap)"** configuration (Figure 6,
//!   `T(B)`), where plans are biased toward bitmap-index access paths, and
//!   per-predicate rid bitmaps are merged with bitwise AND;
//! * position-list representations in the column engine (Section 5.2
//!   describes "a bit string where a 1 in the ith bit indicates that the ith
//!   value passed the predicate"); `cvr-core` reuses [`RidBitmap`] for that.

use cvr_storage::io::{pages_for, FileId, IoSession, PageId, PAGE_SIZE};

/// A fixed-universe bitset over record ids `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RidBitmap {
    words: Vec<u64>,
    len: u32,
}

impl RidBitmap {
    /// Empty bitmap over a universe of `len` rids.
    pub fn new(len: u32) -> RidBitmap {
        RidBitmap { words: vec![0; (len as usize).div_ceil(64)], len }
    }

    /// Bitmap with every rid set.
    pub fn full(len: u32) -> RidBitmap {
        let mut b = RidBitmap::new(len);
        for (i, w) in b.words.iter_mut().enumerate() {
            let base = (i * 64) as u32;
            let bits = (len.saturating_sub(base)).min(64);
            *w = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        }
        b
    }

    /// Universe size.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set `rid`.
    #[inline]
    pub fn set(&mut self, rid: u32) {
        debug_assert!(rid < self.len);
        self.words[(rid / 64) as usize] |= 1u64 << (rid % 64);
    }

    /// Test `rid`.
    #[inline]
    pub fn get(&self, rid: u32) -> bool {
        self.words[(rid / 64) as usize] & (1u64 << (rid % 64)) != 0
    }

    /// OR a whole 64-rid word into the bitmap — the bulk path scan kernels
    /// use to land 64 predicate results at once. `word` indexes rids
    /// `[word·64, word·64 + 64)`; bits beyond the universe must be zero.
    #[inline]
    pub fn or_word(&mut self, word: usize, bits: u64) {
        debug_assert!(
            bits == 0 || word as u64 * 64 + (64 - bits.leading_zeros() as u64) <= self.len as u64,
            "mask bits beyond the rid universe"
        );
        self.words[word] |= bits;
    }

    /// OR a 64-bit mask anchored at an arbitrary rid `base`: bit `j` of
    /// `mask` sets rid `base + j`. Splits across at most two words; aligned
    /// bases take the single-word fast path.
    #[inline]
    pub fn or_mask_at(&mut self, base: u32, mask: u64) {
        if mask == 0 {
            return;
        }
        let word = (base / 64) as usize;
        let off = base % 64;
        if off == 0 {
            self.or_word(word, mask);
        } else {
            self.or_word(word, mask << off);
            let hi = mask >> (64 - off);
            if hi != 0 {
                self.or_word(word + 1, hi);
            }
        }
    }

    /// Set every rid in `[start, end)`, whole words at a time.
    pub fn set_range(&mut self, start: u32, end: u32) {
        debug_assert!(end <= self.len);
        if start >= end {
            return;
        }
        let (first, last) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        let lo_bits = u64::MAX << (start % 64);
        let hi_bits = u64::MAX >> (63 - (end - 1) % 64);
        if first == last {
            self.words[first] |= lo_bits & hi_bits;
            return;
        }
        self.words[first] |= lo_bits;
        for w in &mut self.words[first + 1..last] {
            *w = u64::MAX;
        }
        self.words[last] |= hi_bits;
    }

    /// OR a span of mask words starting at word index `start_word` — the
    /// bulk ingestion path for kernel-produced selection masks.
    pub fn extend_from_words(&mut self, start_word: usize, masks: &[u64]) {
        for (i, &m) in masks.iter().enumerate() {
            if m != 0 {
                self.or_word(start_word + i, m);
            }
        }
    }

    /// The backing words, 64 rids each (LSB first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// In-place intersection (`self &= other`).
    pub fn and_with(&mut self, other: &RidBitmap) {
        assert_eq!(self.len, other.len, "bitmap universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union (`self |= other`).
    pub fn or_with(&mut self, other: &RidBitmap) {
        assert_eq!(self.len, other.len, "bitmap universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterate set rids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = (i * 64) as u32;
            BitIter { word: w, base }
        })
    }

    /// Collect set rids into a vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.count() as usize);
        v.extend(self.iter());
        v
    }

    /// Build from sorted-or-not rid list.
    pub fn from_rids(len: u32, rids: impl IntoIterator<Item = u32>) -> RidBitmap {
        let mut b = RidBitmap::new(len);
        for r in rids {
            b.set(r);
        }
        b
    }

    /// Bytes of the raw bitmap (uncompressed).
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

/// A bitmap index: one rid bitmap per distinct value of an integer column
/// (string columns are indexed through their dictionary codes).
#[derive(Debug)]
pub struct BitmapIndex {
    /// Sorted distinct values.
    values: Vec<i64>,
    /// `bitmaps[i]` holds the rids where the column equals `values[i]`.
    bitmaps: Vec<RidBitmap>,
    file: FileId,
    rows: u32,
}

impl BitmapIndex {
    /// Build over an integer column.
    pub fn build(column: &[i64]) -> BitmapIndex {
        let mut values: Vec<i64> = column.to_vec();
        values.sort_unstable();
        values.dedup();
        let rows = column.len() as u32;
        let mut bitmaps: Vec<RidBitmap> = values.iter().map(|_| RidBitmap::new(rows)).collect();
        for (rid, v) in column.iter().enumerate() {
            let idx = values.binary_search(v).unwrap();
            bitmaps[idx].set(rid as u32);
        }
        BitmapIndex { values, bitmaps, file: FileId::fresh(), rows }
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Total on-disk bytes of all bitmaps.
    pub fn bytes(&self) -> u64 {
        self.bitmaps.iter().map(RidBitmap::bytes).sum()
    }

    /// Rids matching `pred` over the indexed values, OR-ing the per-value
    /// bitmaps that satisfy it. Charges the pages of each bitmap read.
    pub fn select(&self, pred: impl Fn(i64) -> bool, io: &IoSession) -> RidBitmap {
        let mut out = RidBitmap::new(self.rows);
        let mut page_cursor = 0u32;
        for (i, v) in self.values.iter().enumerate() {
            let bm_pages = pages_for(self.bitmaps[i].bytes());
            if pred(*v) {
                for p in 0..bm_pages {
                    io.read_page(
                        PageId { file: self.file, page: page_cursor + p },
                        PAGE_SIZE.min(self.bitmaps[i].bytes()),
                    );
                }
                out.or_with(&self.bitmaps[i]);
            }
            page_cursor += bm_pages;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = RidBitmap::new(200);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(199);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(199));
        assert!(!b.get(1) && !b.get(100));
        assert_eq!(b.count(), 4);
        assert_eq!(b.to_vec(), vec![0, 63, 64, 199]);
    }

    #[test]
    fn bulk_word_paths_match_per_bit_sets() {
        // set_range vs per-bit set, across word boundaries.
        for (start, end) in [(0u32, 0u32), (3, 3), (0, 64), (5, 64), (63, 65), (10, 200), (64, 128)]
        {
            let mut bulk = RidBitmap::new(200);
            bulk.set_range(start, end);
            let mut bits = RidBitmap::new(200);
            for p in start..end {
                bits.set(p);
            }
            assert_eq!(bulk, bits, "set_range({start}, {end})");
        }
        // or_mask_at at aligned and unaligned bases.
        for base in [0u32, 64, 7, 63] {
            let mask = 0b1011u64 | (1 << 40);
            let mut bulk = RidBitmap::new(200);
            bulk.or_mask_at(base, mask);
            let mut bits = RidBitmap::new(200);
            for j in 0..64u32 {
                if mask & (1 << j) != 0 {
                    bits.set(base + j);
                }
            }
            assert_eq!(bulk, bits, "or_mask_at({base})");
        }
        // extend_from_words lands whole mask words.
        let mut bulk = RidBitmap::new(256);
        bulk.extend_from_words(1, &[u64::MAX, 0, 1]);
        assert_eq!(bulk.count(), 65);
        assert!(bulk.get(64) && bulk.get(127) && bulk.get(192));
        assert_eq!(bulk.words()[0], 0);
    }

    #[test]
    fn and_or_semantics() {
        let a = RidBitmap::from_rids(100, [1u32, 2, 3, 50]);
        let b = RidBitmap::from_rids(100, [2u32, 3, 4, 99]);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.to_vec(), vec![2, 3]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.to_vec(), vec![1, 2, 3, 4, 50, 99]);
    }

    #[test]
    fn full_bitmap() {
        let b = RidBitmap::full(130);
        assert_eq!(b.count(), 130);
        assert!(b.get(129));
        let empty = RidBitmap::full(0);
        assert_eq!(empty.count(), 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universes_panic() {
        let mut a = RidBitmap::new(10);
        a.and_with(&RidBitmap::new(20));
    }

    #[test]
    fn bitmap_index_select() {
        // Column with values 0..4 cycling over 1000 rows.
        let col: Vec<i64> = (0..1000).map(|i| i % 5).collect();
        let idx = BitmapIndex::build(&col);
        assert_eq!(idx.cardinality(), 5);
        let io = IoSession::unmetered();
        let sel = idx.select(|v| v == 2 || v == 4, &io);
        assert_eq!(sel.count(), 400);
        for rid in sel.iter() {
            assert!(col[rid as usize] == 2 || col[rid as usize] == 4);
        }
        // Reading 2 of 5 bitmaps charges fewer bytes than all 5.
        assert!(io.stats().pages_read >= 2);
    }

    #[test]
    fn bitmap_index_empty_selection() {
        let col: Vec<i64> = (0..100).collect();
        let idx = BitmapIndex::build(&col);
        let io = IoSession::unmetered();
        assert_eq!(idx.select(|_| false, &io).count(), 0);
        assert_eq!(io.stats().pages_read, 0);
    }

    #[test]
    fn bitmap_bytes_scale_with_cardinality() {
        let low: Vec<i64> = (0..10_000).map(|i| i % 2).collect();
        let high: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
        assert!(BitmapIndex::build(&high).bytes() > BitmapIndex::build(&low).bytes());
    }
}
