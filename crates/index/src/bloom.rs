//! Bloom filter for star-join pre-filtering.
//!
//! Section 6.2 notes that System X "implements a star join and the optimizer
//! will use bloom filters when it expects this will improve query
//! performance". The row engine's hash join takes an optional bloom filter
//! built from the build side; probes that miss the filter skip the hash
//! table entirely.

/// A classic k-hash Bloom filter over `i64` keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    k: u32,
}

impl BloomFilter {
    /// Filter sized for `expected` keys at roughly `fpp` false-positive rate
    /// (`fpp` clamped to `[1e-6, 0.5]`).
    pub fn new(expected: usize, fpp: f64) -> BloomFilter {
        let fpp = fpp.clamp(1e-6, 0.5);
        let n = expected.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m_bits = (-(n * fpp.ln()) / (ln2 * ln2)).ceil().max(64.0);
        // Round up to a power of two so we can mask instead of mod.
        let m = (m_bits as u64).next_power_of_two();
        let k = (((m as f64 / n) * ln2).round() as u32).clamp(1, 8);
        BloomFilter { bits: vec![0; (m / 64) as usize], mask: m - 1, k }
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.k
    }

    /// Size of the bit array in bytes.
    pub fn bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    #[inline]
    fn probe_positions(&self, key: i64) -> impl Iterator<Item = u64> + '_ {
        // Kirsch–Mitzenmacher double hashing from one 128-bit mix.
        let h = splitmix(key as u64);
        let h1 = h;
        let h2 = (h >> 32) | 1; // odd, so strides cover the table
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) & self.mask)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: i64) {
        let positions: Vec<u64> = self.probe_positions(key).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// True when `key` *may* be present; false means definitely absent.
    #[inline]
    pub fn may_contain(&self, key: i64) -> bool {
        self.probe_positions(key).all(|p| self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0)
    }
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(10_000, 0.01);
        for k in 0..10_000i64 {
            f.insert(k * 7);
        }
        for k in 0..10_000i64 {
            assert!(f.may_contain(k * 7));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = BloomFilter::new(10_000, 0.01);
        for k in 0..10_000i64 {
            f.insert(k);
        }
        let fp = (10_000..110_000i64).filter(|&k| f.may_contain(k)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_rejects_everything_mostly() {
        let f = BloomFilter::new(100, 0.01);
        assert!(!(0..1000i64).any(|k| f.may_contain(k)));
    }

    #[test]
    fn sizes_scale_with_expectation() {
        let small = BloomFilter::new(100, 0.01);
        let large = BloomFilter::new(1_000_000, 0.01);
        assert!(large.bytes() > small.bytes());
        assert!(small.hashes() >= 1 && small.hashes() <= 8);
    }
}
