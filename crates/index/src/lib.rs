//! # cvr-index — index substrate
//!
//! The access methods both engines build on:
//!
//! * [`btree`] — an unclustered B+Tree with composite [`cvr_data::Value`]
//!   keys; the backbone of the row store's "index-only" (AI) physical design
//!   and the clustered position indexes of the vertical-partitioning design.
//! * [`bitmap`] — rid bitmaps and per-value bitmap indexes, used by the
//!   "traditional (bitmap)" configuration and reused by the column engine as
//!   one of its position-list representations.
//! * [`bloom`] — Bloom filters for star-join pre-filtering, a System X
//!   optimizer feature the paper mentions enabling.
//! * [`hashidx`] — open-addressing integer hash set/map with a cheap
//!   multiply-shift hash: the probe structure behind hash joins and the
//!   invisible join's key-membership predicates.
//!
//! Every structure reports its byte/page footprint and charges page touches
//! to an [`cvr_storage::IoSession`], so index-based plans pay honest I/O in
//! the simulator's cost model.

#![warn(missing_docs)]

pub mod bitmap;
pub mod bloom;
pub mod btree;
pub mod hashidx;

pub use bitmap::{BitmapIndex, RidBitmap};
pub use bloom::BloomFilter;
pub use btree::{ikey, skey, BPlusTree, Key, Rid};
pub use hashidx::{IntHashMap, IntHashSet};
