//! A from-scratch B+Tree keyed by (possibly composite) [`Value`] keys.
//!
//! This is the index behind the paper's two index-heavy row-store designs:
//!
//! * **"index-only" (AI)** — an unclustered B+Tree on *every* column, with
//!   plans that read `(value, record-id)` pairs straight out of the leaves
//!   and never touch the heap (Section 4, "Index-only plans");
//! * composite-key indexes on dimension tables, "storing the primary key of
//!   each dimension table as a secondary sort attribute" so a predicate scan
//!   also yields the join keys.
//!
//! The tree supports incremental [`BPlusTree::insert`] (with node splits) and
//! fast bottom-up [`BPlusTree::bulk_load`]; both produce identical lookup
//! semantics (verified by property tests). Nodes are sized to one 32 KB page
//! each and accessed through an [`IoSession`], so index plans pay realistic
//! page counts — full leaf scans are sequential, root-to-leaf descents are
//! random (seeks).

use cvr_data::value::Value;
use cvr_storage::io::{FileId, IoSession, PageId, PAGE_SIZE};

/// A (possibly composite) index key: lexicographically ordered values.
pub type Key = Vec<Value>;

/// Encoded size of a key on a page: 4 bytes per int, len+1 per string.
pub fn key_bytes(key: &Key) -> usize {
    key.iter()
        .map(|v| match v {
            Value::Int(_) => 4,
            Value::Str(s) => 1 + s.len(),
        })
        .sum()
}

/// Record-id payload stored in leaves.
pub type Rid = u32;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// `keys[i]` separates `children[i]` (keys < it) from `children[i+1]`.
        keys: Vec<Key>,
        children: Vec<usize>,
    },
    Leaf {
        entries: Vec<(Key, Rid)>,
        next: Option<usize>,
    },
}

/// An unclustered B+Tree mapping keys to record ids. Duplicate keys are
/// allowed (a multiset); scans return entries in key order, with the order
/// of record-ids *within* one key unspecified — consumers (rid joins, rid
/// bitmaps) are order-insensitive.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: usize,
    /// Max entries per leaf / children per internal node.
    order: usize,
    len: usize,
    file: FileId,
}

/// Default node fanout: sized so a leaf of typical SSBM entries (~12-byte
/// key+rid) fills most of a 32 KB page.
pub const DEFAULT_ORDER: usize = 2048;

impl BPlusTree {
    /// Empty tree with the default order.
    pub fn new() -> BPlusTree {
        BPlusTree::with_order(DEFAULT_ORDER)
    }

    /// Empty tree with explicit `order` (≥ 4; small orders are useful in
    /// tests to force deep trees).
    pub fn with_order(order: usize) -> BPlusTree {
        assert!(order >= 4, "order must be at least 4");
        BPlusTree {
            nodes: vec![Node::Leaf { entries: Vec::new(), next: None }],
            root: 0,
            order,
            len: 0,
            file: FileId::fresh(),
        }
    }

    /// Bottom-up bulk load from entries (sorted internally).
    pub fn bulk_load(mut entries: Vec<(Key, Rid)>) -> BPlusTree {
        Self::bulk_load_with_order(&mut entries, DEFAULT_ORDER)
    }

    /// Bulk load with explicit order.
    pub fn bulk_load_with_order(entries: &mut [(Key, Rid)], order: usize) -> BPlusTree {
        assert!(order >= 4);
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let len = entries.len();
        let mut nodes = Vec::new();
        if entries.is_empty() {
            nodes.push(Node::Leaf { entries: Vec::new(), next: None });
            return BPlusTree { nodes, root: 0, order, len, file: FileId::fresh() };
        }
        // Fill leaves ~2/3 (typical steady-state occupancy).
        let per_leaf = (order * 2 / 3).max(2);
        let mut level: Vec<(Key, usize)> = Vec::new(); // (first key, node)
        for chunk in entries.chunks(per_leaf) {
            let id = nodes.len();
            if id > 0 {
                if let Node::Leaf { next, .. } = &mut nodes[id - 1] {
                    *next = Some(id);
                }
            }
            nodes.push(Node::Leaf { entries: chunk.to_vec(), next: None });
            level.push((chunk[0].0.clone(), id));
        }
        // Build internal levels.
        let per_node = (order * 2 / 3).max(2);
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(per_node) {
                let id = nodes.len();
                let keys = group[1..].iter().map(|(k, _)| k.clone()).collect();
                let children = group.iter().map(|&(_, c)| c).collect();
                nodes.push(Node::Internal { keys, children });
                next_level.push((group[0].0.clone(), id));
            }
            level = next_level;
        }
        let root = level[0].1;
        BPlusTree { nodes, root, order, len, file: FileId::fresh() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = children[0];
            h += 1;
        }
        h
    }

    /// Storage file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of nodes (each occupies one page).
    pub fn pages(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Total size: one page per node.
    pub fn bytes(&self) -> u64 {
        self.nodes.len() as u64 * PAGE_SIZE
    }

    /// Insert an entry, splitting nodes as needed.
    pub fn insert(&mut self, key: Key, rid: Rid) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, rid) {
            let new_root = self.nodes.len();
            let old_root = self.root;
            self.nodes.push(Node::Internal { keys: vec![sep], children: vec![old_root, right] });
            self.root = new_root;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `(separator, new_right_node)` on split.
    fn insert_rec(&mut self, node: usize, key: Key, rid: Rid) -> Option<(Key, usize)> {
        enum Step {
            Done,
            SplitLeaf,
            Child(usize, Key, Rid),
        }
        let order = self.order;
        let step = match &mut self.nodes[node] {
            Node::Leaf { entries, .. } => {
                let pos = entries.partition_point(|(k, r)| (k, *r) <= (&key, rid));
                entries.insert(pos, (key, rid));
                if entries.len() > order {
                    Step::SplitLeaf
                } else {
                    Step::Done
                }
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= &key);
                Step::Child(children[idx], key, rid)
            }
        };
        match step {
            Step::Done => None,
            Step::SplitLeaf => {
                let right_id = self.nodes.len();
                let (sep, right_entries, old_next) = {
                    let Node::Leaf { entries, next } = &mut self.nodes[node] else {
                        unreachable!()
                    };
                    let mid = entries.len() / 2;
                    let right_entries = entries.split_off(mid);
                    let sep = right_entries[0].0.clone();
                    let old_next = next.replace(right_id);
                    (sep, right_entries, old_next)
                };
                self.nodes.push(Node::Leaf { entries: right_entries, next: old_next });
                Some((sep, right_id))
            }
            Step::Child(child, key, rid) => {
                let (sep, right) = self.insert_rec(child, key, rid)?;
                let split = {
                    let Node::Internal { keys, children } = &mut self.nodes[node] else {
                        unreachable!()
                    };
                    let idx = keys.partition_point(|k| k <= &sep);
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if children.len() > order {
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // the separator moves up, not right
                        let right_children = children.split_off(mid + 1);
                        Some((sep_up, right_keys, right_children))
                    } else {
                        None
                    }
                };
                split.map(|(sep_up, right_keys, right_children)| {
                    let right_id = self.nodes.len();
                    self.nodes.push(Node::Internal { keys: right_keys, children: right_children });
                    (sep_up, right_id)
                })
            }
        }
    }

    /// Leaf where entries `>= key` begin, plus the root-to-leaf path.
    ///
    /// Descends by *strict* comparison so that with duplicate keys (or a
    /// prefix bound over composite keys) we land at — or one leaf left of —
    /// the first matching entry; the leaf chain covers the rest.
    fn descend(&self, key: &Key) -> (usize, Vec<usize>) {
        let mut path = Vec::new();
        let mut n = self.root;
        loop {
            path.push(n);
            match &self.nodes[n] {
                Node::Leaf { .. } => return (n, path),
                Node::Internal { keys, children } => {
                    let idx =
                        keys.partition_point(|k| prefix_cmp(k, key) == std::cmp::Ordering::Less);
                    n = children[idx];
                }
            }
        }
    }

    /// All rids with key exactly `key`. Charges the descent path and the
    /// visited leaves to `io`.
    pub fn lookup(&self, key: &Key, io: &IoSession) -> Vec<Rid> {
        self.range_scan(Some(key), Some(key), io).into_iter().map(|(_, r)| r).collect()
    }

    /// Entries with `lo <= key <= hi` (either bound may be `None` =
    /// unbounded). Charges the descent path plus each leaf visited.
    ///
    /// Composite-key note: a bound with fewer values than stored keys acts as
    /// a prefix bound, e.g. `lo = [x]` matches every `[x, *]` from its start.
    pub fn range_scan(
        &self,
        lo: Option<&Key>,
        hi: Option<&Key>,
        io: &IoSession,
    ) -> Vec<(Key, Rid)> {
        let (mut leaf, path) = match lo {
            Some(k) => self.descend(k),
            None => {
                let mut n = self.root;
                let mut path = Vec::new();
                loop {
                    path.push(n);
                    match &self.nodes[n] {
                        Node::Leaf { .. } => break (n, path),
                        Node::Internal { children, .. } => n = children[0],
                    }
                }
            }
        };
        for node in &path {
            self.charge_node(*node, io);
        }
        let mut out = Vec::new();
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else { unreachable!() };
            for (k, rid) in entries {
                if let Some(lo) = lo {
                    if prefix_cmp(k, lo) == std::cmp::Ordering::Less {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    if prefix_cmp(k, hi) == std::cmp::Ordering::Greater {
                        return out;
                    }
                }
                out.push((k.clone(), *rid));
            }
            match next {
                Some(n) => {
                    leaf = *n;
                    self.charge_node(leaf, io);
                }
                None => return out,
            }
        }
    }

    /// Scan every leaf entry in key order, charging all leaf pages
    /// (the "full index scan" access path of AI plans). The callback
    /// receives `(key, rid)` one entry at a time — index scans in row-stores
    /// are tuple-at-a-time too.
    pub fn full_scan<'a>(&'a self, io: &'a IoSession) -> impl Iterator<Item = (&'a Key, Rid)> + 'a {
        // Find the leftmost leaf.
        let mut n = self.root;
        loop {
            match &self.nodes[n] {
                Node::Leaf { .. } => break,
                Node::Internal { children, .. } => n = children[0],
            }
        }
        FullScan { tree: self, leaf: Some(n), idx: 0, io }
    }

    fn charge_node(&self, node: usize, io: &IoSession) {
        io.read_page(PageId { file: self.file, page: node as u32 }, PAGE_SIZE);
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        BPlusTree::new()
    }
}

/// Compare `key` against a (possibly shorter) `bound` prefix-wise.
fn prefix_cmp(key: &Key, bound: &Key) -> std::cmp::Ordering {
    for (k, b) in key.iter().zip(bound.iter()) {
        match k.cmp(b) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

struct FullScan<'a> {
    tree: &'a BPlusTree,
    leaf: Option<usize>,
    idx: usize,
    io: &'a IoSession,
}

impl<'a> Iterator for FullScan<'a> {
    type Item = (&'a Key, Rid);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            let Node::Leaf { entries, next } = &self.tree.nodes[leaf] else { unreachable!() };
            if self.idx == 0 {
                self.tree.charge_node(leaf, self.io);
            }
            if let Some((k, rid)) = entries.get(self.idx) {
                self.idx += 1;
                return Some((k, *rid));
            }
            self.leaf = *next;
            self.idx = 0;
        }
    }
}

/// Convenience: single-int key.
pub fn ikey(v: i64) -> Key {
    vec![Value::Int(v)]
}

/// Convenience: single-string key.
pub fn skey(v: &str) -> Key {
    vec![Value::str(v)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_entries(n: usize) -> Vec<(Key, Rid)> {
        // Shuffle deterministically.
        (0..n).map(|i| (ikey(((i * 131) % n) as i64), i as Rid)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = BPlusTree::with_order(4);
        for (k, r) in int_entries(500) {
            t.insert(k, r);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 2, "small order must force splits");
        let io = IoSession::unmetered();
        for v in [0i64, 17, 499] {
            let rids = t.lookup(&ikey(v), &io);
            assert_eq!(rids.len(), 1, "missing key {v}");
        }
        assert!(t.lookup(&ikey(1000), &io).is_empty());
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries = int_entries(2000);
        let mut inserted = BPlusTree::with_order(16);
        for (k, r) in entries.clone() {
            inserted.insert(k, r);
        }
        let bulk = BPlusTree::bulk_load_with_order(&mut entries.clone(), 16);
        let io = IoSession::unmetered();
        let a: Vec<_> = inserted.full_scan(&io).map(|(k, r)| (k.clone(), r)).collect();
        let b: Vec<_> = bulk.full_scan(&io).map(|(k, r)| (k.clone(), r)).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
        // Sorted by key.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn duplicates_preserved() {
        let mut t = BPlusTree::with_order(4);
        for rid in 0..100 {
            t.insert(ikey(7), rid);
        }
        let io = IoSession::unmetered();
        assert_eq!(t.lookup(&ikey(7), &io).len(), 100);
    }

    #[test]
    fn range_scan_inclusive() {
        let mut entries: Vec<(Key, Rid)> = (0..100).map(|i| (ikey(i), i as Rid)).collect();
        let t = BPlusTree::bulk_load_with_order(&mut entries, 8);
        let io = IoSession::unmetered();
        let got = t.range_scan(Some(&ikey(10)), Some(&ikey(20)), &io);
        assert_eq!(got.len(), 11);
        assert_eq!(got[0].1, 10);
        assert_eq!(got[10].1, 20);
        // Unbounded below.
        assert_eq!(t.range_scan(None, Some(&ikey(5)), &io).len(), 6);
        // Unbounded above.
        assert_eq!(t.range_scan(Some(&ikey(95)), None, &io).len(), 5);
    }

    #[test]
    fn composite_keys_prefix_ranges() {
        // (region, pk) composite entries, like a dimension index.
        let regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE"];
        let mut entries = Vec::new();
        for pk in 0..400i64 {
            let r = regions[(pk % 4) as usize];
            entries.push((vec![Value::str(r), Value::Int(pk)], pk as Rid));
        }
        let t = BPlusTree::bulk_load_with_order(&mut entries, 16);
        let io = IoSession::unmetered();
        // Prefix bound: every (ASIA, *) entry.
        let asia = t.range_scan(Some(&skey("ASIA")), Some(&skey("ASIA")), &io);
        assert_eq!(asia.len(), 100);
        for (k, _) in &asia {
            assert_eq!(k[0], Value::str("ASIA"));
        }
        // The secondary key (the dimension pk) is readable from the entries.
        let pks: Vec<i64> = asia.iter().map(|(k, _)| k[1].as_int()).collect();
        assert!(pks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn full_scan_charges_leaf_pages_sequentially() {
        let mut entries = int_entries(5000);
        let t = BPlusTree::bulk_load_with_order(&mut entries, 64);
        let io = IoSession::unmetered();
        let n = t.full_scan(&io).count();
        assert_eq!(n, 5000);
        let stats = io.stats();
        assert!(stats.pages_read > 50, "expected many leaf pages, got {}", stats.pages_read);
        assert!(stats.pages_read < t.pages() as u64 + 1);
    }

    #[test]
    fn point_lookup_charges_height_pages() {
        let mut entries = int_entries(10_000);
        let t = BPlusTree::bulk_load_with_order(&mut entries, 32);
        let io = IoSession::unmetered();
        t.lookup(&ikey(1234), &io);
        let stats = io.stats();
        assert!(stats.pages_read as usize >= t.height());
        assert!(stats.pages_read as usize <= t.height() + 2);
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        let io = IoSession::unmetered();
        assert!(t.is_empty());
        assert!(t.lookup(&ikey(1), &io).is_empty());
        assert_eq!(t.full_scan(&io).count(), 0);
        let bulk = BPlusTree::bulk_load(Vec::new());
        assert!(bulk.is_empty());
    }

    #[test]
    fn key_bytes_accounting() {
        assert_eq!(key_bytes(&ikey(5)), 4);
        assert_eq!(key_bytes(&skey("ASIA")), 5);
        assert_eq!(key_bytes(&vec![Value::str("ASIA"), Value::Int(1)]), 9);
    }

    #[test]
    fn string_keys_sorted() {
        let mut t = BPlusTree::with_order(4);
        let words = ["delta", "alpha", "echo", "bravo", "charlie"];
        for (i, w) in words.iter().enumerate() {
            t.insert(skey(w), i as Rid);
        }
        let io = IoSession::unmetered();
        let keys: Vec<String> = t.full_scan(&io).map(|(k, _)| k[0].as_str().to_string()).collect();
        assert_eq!(keys, vec!["alpha", "bravo", "charlie", "delta", "echo"]);
    }
}
