//! Open-addressing integer hash set/map tuned for join key probing.
//!
//! The invisible join's second phase probes a hash table with *every*
//! foreign-key value of the fact table (Section 5.4.1) — tens of millions of
//! probes — and the row engine's hash joins do the same. `std::collections`
//! uses SipHash, whose per-probe cost would dominate and distort the CPU
//! measurements, so we use a local multiply-shift hash with linear probing
//! (the `rustc-hash` approach, implemented here to stay within the allowed
//! dependency set).

const EMPTY: i64 = i64::MIN;

#[inline]
fn hash(key: i64, mask: usize) -> usize {
    // Fibonacci hashing: multiply by 2^64/φ and take the high bits.
    let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize & mask
}

/// A set of `i64` keys (keys must not equal `i64::MIN`).
#[derive(Debug, Clone)]
pub struct IntHashSet {
    slots: Vec<i64>,
    mask: usize,
    len: usize,
}

impl IntHashSet {
    /// Set sized for `capacity` keys at ≤ 50% load.
    pub fn with_capacity(capacity: usize) -> IntHashSet {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        IntHashSet { slots: vec![EMPTY; slots], mask: slots - 1, len: 0 }
    }

    /// Build from an iterator.
    pub fn from_keys(keys: impl IntoIterator<Item = i64>) -> IntHashSet {
        let keys: Vec<i64> = keys.into_iter().collect();
        let mut s = IntHashSet::with_capacity(keys.len());
        for k in keys {
            s.insert(k);
        }
        s
    }

    /// Insert `key`; returns true when newly added.
    pub fn insert(&mut self, key: i64) -> bool {
        assert!(key != EMPTY, "i64::MIN is reserved");
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut i = hash(key, self.mask);
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            if slot == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Membership probe — the invisible-join hot path.
    #[inline]
    pub fn contains(&self, key: i64) -> bool {
        let mut i = hash(key, self.mask);
        loop {
            let slot = self.slots[i];
            if slot == key {
                return true;
            }
            if slot == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.slots.len() as u64 * 8
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_len]);
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for k in old {
            if k != EMPTY {
                self.insert(k);
            }
        }
    }
}

/// A map from `i64` keys to `u32` payloads (e.g. dimension key → row
/// position). Keys must not equal `i64::MIN`; duplicate inserts keep the
/// first payload.
#[derive(Debug, Clone)]
pub struct IntHashMap {
    keys: Vec<i64>,
    vals: Vec<u32>,
    mask: usize,
    len: usize,
}

impl IntHashMap {
    /// Map sized for `capacity` keys at ≤ 50% load.
    pub fn with_capacity(capacity: usize) -> IntHashMap {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        IntHashMap { keys: vec![EMPTY; slots], vals: vec![0; slots], mask: slots - 1, len: 0 }
    }

    /// Build from `(key, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (i64, u32)>) -> IntHashMap {
        let pairs: Vec<(i64, u32)> = pairs.into_iter().collect();
        let mut m = IntHashMap::with_capacity(pairs.len());
        for (k, v) in pairs {
            m.insert(k, v);
        }
        m
    }

    /// Insert; keeps the existing payload when `key` is present.
    pub fn insert(&mut self, key: i64, val: u32) {
        assert!(key != EMPTY, "i64::MIN is reserved");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = hash(key, self.mask);
        loop {
            let slot = self.keys[i];
            if slot == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if slot == key {
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert or overwrite the payload for `key`.
    pub fn upsert(&mut self, key: i64, val: u32) {
        assert!(key != EMPTY, "i64::MIN is reserved");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = hash(key, self.mask);
        loop {
            let slot = self.keys[i];
            if slot == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if slot == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Lookup — hot path.
    #[inline]
    pub fn get(&self, key: i64) -> Option<u32> {
        let mut i = hash(key, self.mask);
        loop {
            let slot = self.keys[i];
            if slot == key {
                return Some(self.vals[i]);
            }
            if slot == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.keys.len() as u64 * 12
    }

    fn grow(&mut self) {
        let new_len = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_len]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_len]);
        self.mask = self.keys.len() - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn set_insert_contains() {
        let mut s = IntHashSet::with_capacity(4);
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.insert(-5));
        assert!(s.contains(10) && s.contains(-5));
        assert!(!s.contains(11));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_grows_correctly() {
        let mut s = IntHashSet::with_capacity(2);
        for k in 0..10_000i64 {
            s.insert(k * 3 - 5_000);
        }
        assert_eq!(s.len(), 10_000);
        for k in 0..10_000i64 {
            assert!(s.contains(k * 3 - 5_000));
            assert!(!s.contains(k * 3 - 5_000 + 1));
        }
    }

    #[test]
    fn set_matches_std_on_random_input() {
        let mut rng_state = 12345u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 16) as i64 % 1000
        };
        let mut ours = IntHashSet::with_capacity(8);
        let mut std = HashSet::new();
        for _ in 0..5_000 {
            let k = next();
            assert_eq!(ours.insert(k), std.insert(k));
        }
        for k in -1100..1100 {
            assert_eq!(ours.contains(k), std.contains(&k));
        }
    }

    #[test]
    fn map_insert_get() {
        let m = IntHashMap::from_pairs([(19970101, 7u32), (19970102, 8)]);
        assert_eq!(m.get(19970101), Some(7));
        assert_eq!(m.get(19970102), Some(8));
        assert_eq!(m.get(19970103), None);
    }

    #[test]
    fn map_keeps_first_payload() {
        let mut m = IntHashMap::with_capacity(4);
        m.insert(1, 100);
        m.insert(1, 200);
        assert_eq!(m.get(1), Some(100));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_matches_std_on_random_input() {
        let mut rng_state = 99u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 16) as i64 % 5000
        };
        let mut ours = IntHashMap::with_capacity(8);
        let mut std: HashMap<i64, u32> = HashMap::new();
        for i in 0..20_000u32 {
            let k = next();
            ours.insert(k, i);
            std.entry(k).or_insert(i);
        }
        for k in -100..5100 {
            assert_eq!(ours.get(k), std.get(&k).copied(), "key {k}");
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn min_key_rejected() {
        IntHashSet::with_capacity(4).insert(i64::MIN);
    }
}
