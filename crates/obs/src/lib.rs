//! # cvr-obs — the process-wide metrics substrate
//!
//! A dependency-free registry of [`Counter`]s, [`Gauge`]s, and fixed-bucket
//! [`Histogram`]s, sitting at the very bottom of the workspace graph so the
//! storage layer (fault injection), the core engines (scheduler, morsels),
//! and the server (sessions, errors, cache) can all record into one place.
//!
//! Three deliberate simplifications keep it cheap and deterministic:
//!
//! * **Fixed buckets.** Histograms take their upper bounds at registration
//!   (log-scale microsecond defaults via [`Histogram::latency_us`]); there
//!   is no resizing, so `observe` is a binary search plus two relaxed
//!   atomic adds.
//! * **Integer samples.** All values are `u64` in the caller's unit
//!   (microseconds for latencies, counts for everything else); metric names
//!   carry the unit suffix (`_us`, `_total`) instead of float scaling.
//! * **Get-or-register.** [`Registry::counter`] and friends return a shared
//!   [`Arc`] handle; hot paths cache the handle in a `OnceLock` and never
//!   touch the registry lock again.
//!
//! [`Registry::render_prometheus`] emits text exposition format 0.0.4
//! (`# HELP` / `# TYPE` / samples, histograms as cumulative `_bucket{le=…}`
//! series), and [`Registry::samples`] flattens everything to `(name, value)`
//! pairs for the wire protocol's STATS frame. Quantiles come from
//! [`Histogram::quantile`] — the *same* estimator the bench harness uses, so
//! wire-reported and bench-reported percentiles agree by construction.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, pool sizes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by ascending upper bounds; an implicit `+Inf`
/// overflow bucket catches the rest. `observe` is lock-free. All derived
/// views (Prometheus series, [`Histogram::quantile`]) read the same atomic
/// cells, so a snapshot taken mid-stream is merely *slightly* stale, never
/// inconsistent in shape.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds (an `+Inf`
    /// overflow bucket is appended implicitly). Panics on empty or
    /// non-ascending bounds — a registration-time bug, not a runtime one.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must ascend");
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, AtomicU64::default);
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The default latency buckets: a 1–2–5 log scale from 10 µs to 60 s.
    pub fn latency_us() -> Histogram {
        Histogram::new(&[
            10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
            200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
        ])
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket holding the target rank. Samples in the `+Inf`
    /// overflow bucket clamp to the largest finite bound. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if cum + n >= target {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: clamp to the largest finite bound.
                    None => return *self.bounds.last().expect("bounds non-empty"),
                };
                let frac = (target - cum) as f64 / n as f64;
                return lower + ((upper - lower) as f64 * frac).round() as u64;
            }
            cum += n;
        }
        *self.bounds.last().expect("bounds non-empty")
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs, ending with the
    /// `(u64::MAX, total)` overflow entry — the Prometheus `_bucket` view.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied().unwrap_or(u64::MAX), cum));
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics; [`global`] is the process-wide instance.
///
/// Names may carry a label set in Prometheus syntax
/// (`cvr_errors_total{code="100"}`); series sharing a base name are grouped
/// under one `# HELP`/`# TYPE` header and must be registered with the same
/// kind.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, (&'static str, Metric)>>,
}

impl Registry {
    /// An empty registry (tests; the process normally uses [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &'static str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        if let Some((_, m)) = self.metrics.read().unwrap_or_else(PoisonError::into_inner).get(name)
        {
            return m.clone();
        }
        let mut map = self.metrics.write().unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_insert_with(|| (help, make())).1.clone()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        match self.get_or_insert(name, help, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        match self.get_or_insert(name, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram `name` with `bounds` (ignored if the
    /// name already exists).
    pub fn histogram(&self, name: &str, help: &'static str, bounds: &[u64]) -> Arc<Histogram> {
        match self.get_or_insert(name, help, || Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register a latency histogram (`Histogram::latency_us` bounds).
    pub fn latency(&self, name: &str, help: &'static str) -> Arc<Histogram> {
        match self
            .get_or_insert(name, help, || Metric::Histogram(Arc::new(Histogram::latency_us())))
        {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Flatten every metric to `(name, value)` pairs, sorted by name: the
    /// STATS-frame view. Histograms contribute `name_count`, `name_sum`,
    /// and interpolated `name_p50` / `name_p99` entries.
    pub fn samples(&self) -> Vec<(String, u64)> {
        let map = self.metrics.read().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(map.len());
        for (name, (_, metric)) in map.iter() {
            match metric {
                Metric::Counter(c) => out.push((name.clone(), c.get())),
                Metric::Gauge(g) => out.push((name.clone(), g.get())),
                Metric::Histogram(h) => {
                    out.push((format!("{name}_count"), h.count()));
                    out.push((format!("{name}_sum"), h.sum()));
                    out.push((format!("{name}_p50"), h.quantile(0.50)));
                    out.push((format!("{name}_p99"), h.quantile(0.99)));
                }
            }
        }
        out.sort();
        out
    }

    /// Render Prometheus text exposition format 0.0.4.
    pub fn render_prometheus(&self) -> String {
        let map = self.metrics.read().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, (help, metric)) in map.iter() {
            // `name{labels}` series share one header under the base name.
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i..]),
                None => (name.as_str(), ""),
            };
            if base != last_base {
                out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} {}\n", metric.kind()));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{base}{labels} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{base}{labels} {}\n", g.get())),
                Metric::Histogram(h) => {
                    for (bound, cum) in h.cumulative() {
                        let le =
                            if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                        out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{base}_sum {}\n", h.sum()));
                    out.push_str(&format!("{base}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every subsystem records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get or register a counter in the [`global`] registry.
pub fn counter(name: &str, help: &'static str) -> Arc<Counter> {
    global().counter(name, help)
}

/// Get or register a gauge in the [`global`] registry.
pub fn gauge(name: &str, help: &'static str) -> Arc<Gauge> {
    global().gauge(name, help)
}

/// Get or register a latency histogram in the [`global`] registry.
pub fn latency(name: &str, help: &'static str) -> Arc<Histogram> {
    global().latency(name, help)
}

/// Emit an operator-facing warning: increments `cvr_warnings_total` in the
/// [`global`] registry and writes the message to stderr. For conditions an
/// operator should see but that don't fail a request — e.g. a chaos spec
/// whose expected fault count would drown every query.
pub fn warn(msg: &str) {
    counter("cvr_warnings_total", "Operator-facing warnings emitted").inc();
    eprintln!("[cvr][warn] {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("hits_total", "hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("hits_total", "hits").get(), 5, "get-or-register shares state");
        let g = r.gauge("depth", "queue depth");
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_is_a_registration_bug() {
        let r = Registry::new();
        r.counter("x", "x");
        r.gauge("x", "x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 5, 50, 50, 50, 500, 2000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2660);
        assert_eq!(h.cumulative(), vec![(10, 2), (100, 5), (1000, 6), (u64::MAX, 7)]);
        // Rank 4 of 7 lands in the (10, 100] bucket.
        let p50 = h.quantile(0.5);
        assert!((10..=100).contains(&p50), "p50 was {p50}");
        // Quantiles are monotone and the overflow bucket clamps.
        assert!(h.quantile(0.25) <= h.quantile(0.75));
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new(&[10]).quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn quantile_matches_exact_on_bucket_bounds() {
        // All mass in one bucket: interpolation stays inside its range.
        let h = Histogram::latency_us();
        for _ in 0..100 {
            h.observe(150);
        }
        let p50 = h.quantile(0.5);
        assert!((100..=200).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = Registry::new();
        r.counter("cvr_hits_total", "cache hits").add(3);
        r.counter("cvr_errors_total{code=\"100\"}", "errors by code").inc();
        r.counter("cvr_errors_total{code=\"99\"}", "errors by code").add(2);
        r.histogram("cvr_wait_us", "queue wait", &[10, 100]).observe(42);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP cvr_hits_total cache hits\n"));
        assert!(text.contains("# TYPE cvr_hits_total counter\n"));
        assert!(text.contains("cvr_hits_total 3\n"));
        assert!(text.contains("cvr_errors_total{code=\"100\"} 1\n"));
        assert!(text.contains("cvr_errors_total{code=\"99\"} 2\n"));
        // Labeled series share one header.
        assert_eq!(text.matches("# TYPE cvr_errors_total counter").count(), 1);
        assert!(text.contains("cvr_wait_us_bucket{le=\"10\"} 0\n"));
        assert!(text.contains("cvr_wait_us_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("cvr_wait_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("cvr_wait_us_sum 42\n"));
        assert!(text.contains("cvr_wait_us_count 1\n"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.split(' ').count() == 2, "bad line: {line}");
        }
    }

    #[test]
    fn samples_flatten_histograms() {
        let r = Registry::new();
        r.counter("a_total", "a").inc();
        r.histogram("lat_us", "latency", &[10, 100]).observe(50);
        let s = r.samples();
        let get = |n: &str| s.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("a_total"), Some(1));
        assert_eq!(get("lat_us_count"), Some(1));
        assert_eq!(get("lat_us_sum"), Some(50));
        assert!(get("lat_us_p50").is_some() && get("lat_us_p99").is_some());
    }
}
