//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset this workspace's benches
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`).
//!
//! The build environment has no crates.io access. This shim keeps the bench
//! sources compiling unchanged and produces honest wall-clock numbers:
//! each benchmark is warmed up, then sampled in timed batches, and the
//! median per-iteration time is reported to stdout. There are no HTML
//! reports, no statistical regression machinery, and no saved baselines —
//! for those, swap the real crate back in via `Cargo.toml`.
//!
//! Knobs (environment variables):
//! * `CRITERION_SAMPLE_MS` — per-benchmark measurement budget in
//!   milliseconds (default 300).
//! * `CRITERION_WARMUP_MS` — warm-up budget in milliseconds (default 100).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; mirrored from real criterion.
/// The shim re-runs setup per sample regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; many iterations per batch would be fine.
    SmallInput,
    /// Routine input is large (e.g. a cloned 200k-entry Vec).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_budget: Duration,
    warmup_budget: Duration,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default_ms),
    )
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_budget: env_ms("CRITERION_SAMPLE_MS", 300),
            warmup_budget: env_ms("CRITERION_WARMUP_MS", 100),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup { criterion: self, name }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.warmup_budget, self.sample_budget, name, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility. The shim samples by time budget, not
    /// by sample count, so this is a no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `self.name/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_one(self.criterion.warmup_budget, self.criterion.sample_budget, &full, f);
        self
    }

    /// Ends the group (output is flushed eagerly; provided for API parity).
    pub fn finish(self) {}
}

fn run_one(warmup: Duration, budget: Duration, name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { mode: Mode::Warmup(warmup), samples: Vec::new() };
    f(&mut b);
    b.mode = Mode::Measure(budget);
    b.samples.clear();
    f(&mut b);
    b.samples.sort_unstable();
    let median = match b.samples.len() {
        0 => Duration::ZERO,
        n => b.samples[n / 2],
    };
    println!("  {name:<40} time: [{}]  ({} samples)", fmt_duration(median), b.samples.len());
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Warmup(Duration),
    Measure(Duration),
}

/// Timer handle passed to the closure given to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

/// Hard ceiling on samples per benchmark, so a fast routine under a long
/// budget cannot grow the sample vector without bound.
const MAX_SAMPLES: usize = 10_000;

impl Bencher {
    fn budget(&self) -> Duration {
        match self.mode {
            Mode::Warmup(d) | Mode::Measure(d) => d,
        }
    }

    /// Times `routine`, called repeatedly until the time budget is spent.
    ///
    /// Iterations are timed in batches sized so one sample spans ~1 ms:
    /// for nanosecond-scale routines a per-call `Instant::now()` pair costs
    /// more than the routine itself (and a 300 ms budget would log millions
    /// of samples), so batching is what keeps sub-microsecond medians
    /// honest and memory bounded.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let budget = self.budget();
        let calibrate = Instant::now();
        drop(routine());
        let once = calibrate.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                drop(routine());
            }
            let elapsed = t0.elapsed();
            if matches!(self.mode, Mode::Measure(_)) {
                self.samples.push(elapsed / batch);
            }
            if started.elapsed() >= budget || self.samples.len() >= MAX_SAMPLES {
                break;
            }
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time
    /// from the measurement. Each sample is one call: the input is consumed
    /// by the routine, so iterations cannot be batched without re-running
    /// setup, and setup-per-input routines are never nanosecond-scale.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget = self.budget();
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let elapsed = t0.elapsed();
            drop(out);
            if matches!(self.mode, Mode::Measure(_)) {
                self.samples.push(elapsed);
            }
            if started.elapsed() >= budget || self.samples.len() >= MAX_SAMPLES {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
/// Cargo passes harness flags (e.g. `--bench`) to the binary; this shim has
/// no options, so arguments are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            sample_budget: Duration::from_millis(5),
            warmup_budget: Duration::from_millis(1),
        }
    }

    #[test]
    fn iter_collects_samples_and_runs_routine() {
        let mut c = fast_criterion();
        let mut runs = 0u64;
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        g.finish();
        assert!(runs > 0, "routine must actually execute");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = fast_criterion();
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| std::hint::black_box(v.len()),
                BatchSize::LargeInput,
            )
        });
        assert!(setups > 0);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
