//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, implementing the subset of its API this workspace uses on top of
//! `std::sync`.
//!
//! The build environment has no access to a crates.io registry, so the real
//! crate cannot be vendored as source. The behavioral contract the workspace
//! relies on is small: `Mutex::lock` / `RwLock::read` / `RwLock::write`
//! return guards directly (no `Result`, no lock poisoning). Poisoning from a
//! panicked holder is deliberately ignored, exactly like `parking_lot`.
//!
//! Performance characteristics are those of `std::sync` primitives, which on
//! modern glibc are futex-based and adequate for this workspace's workloads.
//! Swapping in the real crate later requires only a `Cargo.toml` change.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual exclusion primitive, mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the `&mut self` receiver proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock, mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: a panicked holder must not wedge the lock.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
