//! Collection strategies (`prop::collection::vec`, `prop::collection::btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// `Vec` strategy: length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` strategy: draws `size` candidate elements and keeps the
/// distinct ones, so (as in real proptest) the set's length may come out
/// below the drawn size when the element domain is small.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.clone().generate(rng);
        (0..target).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_ranges() {
        let mut rng = TestRng::for_case("collection::tests::vec", 0);
        let strat = vec(0i64..50, 0..60);
        let mut lens = BTreeSet::new();
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 60);
            assert!(v.iter().all(|x| (0..50).contains(x)));
            lens.insert(v.len());
        }
        assert!(lens.len() > 20, "lengths should vary, got {lens:?}");
    }

    #[test]
    fn btree_set_stays_in_domain_and_below_target() {
        let mut rng = TestRng::for_case("collection::tests::set", 0);
        let strat = btree_set(0u32..10, 0..300);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 10, "only 10 distinct values exist");
            assert!(s.iter().all(|x| *x < 10));
        }
    }
}
