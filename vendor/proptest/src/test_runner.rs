//! Config, error type, and the deterministic RNG behind the `proptest!`
//! macro.

use std::fmt;

/// Runner configuration, mirroring `proptest::test_runner::Config` (exposed
/// in the prelude as `ProptestConfig`). Only the fields this workspace's
/// tests set are meaningful; the rest exist for struct-update compatibility.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented, so this is
    /// never consulted.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps `cargo test -q` fast while
        // still exercising each property across a spread of sizes (the
        // per-case seeds cover empty, tiny, and near-maximum collections).
        Config { cases: 64, max_shrink_iters: 0 }
    }
}

/// Failure raised by the `prop_assert*!` macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: a tiny, high-quality 64-bit generator (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, seeded from the test's module path + name and
    /// the case index, so every case of every property draws from a distinct
    /// deterministic stream. `PROPTEST_SEED=<u64>` shifts all streams.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let base: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5EED_2008);
        let mut seed = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1);
        for b in test_name.bytes() {
            // FNV-1a over the name keeps unrelated tests decorrelated.
            seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is ~bound/2^64 — irrelevant at test-strategy scales.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a1 = TestRng::for_case("t::alpha", 0);
        let mut a2 = TestRng::for_case("t::alpha", 0);
        let mut b = TestRng::for_case("t::beta", 0);
        let mut a_next = TestRng::for_case("t::alpha", 1);
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64());
        assert_ne!(x, b.next_u64());
        assert_ne!(x, a_next.next_u64());
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut rng = TestRng::for_case("t::unit", 0);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("t::below", 0);
        for bound in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
