//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, implementing the API subset this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides the
//! same surface (`proptest!`, `prop_assert*!`, `Strategy`, `any`,
//! `prop::collection`, `ProptestConfig`) backed by a deterministic
//! SplitMix64 generator. Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports the case number and seed; the
//!   inputs are reproduced by the deterministic seeding rather than
//!   minimized. Set `PROPTEST_SEED` to explore a different universe.
//! * **Regex strategies** (`"[a-z]{0,12}"` as a `Strategy<Value = String>`)
//!   support the character-class + repetition subset the workspace uses,
//!   not full regex syntax.
//! * Collection strategies take a `Range<usize>` length, the only size
//!   specification the workspace's tests use.
//!
//! Swapping back to real proptest requires only a `Cargo.toml` change; the
//! test sources compile against either.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `use proptest::prelude::*` surface: strategy constructors, the
/// config/runner types, and the macros.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop`, the module-style entry point
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`: takes an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]` functions
/// whose arguments use `pattern in strategy` syntax.
///
/// Each function runs `config.cases` deterministic cases; `prop_assert*!`
/// failures abort the case with a panic naming the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    { ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )* } => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\n(deterministic: rerun reproduces it; \
                         set PROPTEST_SEED to vary inputs)",
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )* };
}

/// Asserts a condition inside a `proptest!` body, returning a
/// [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            left,
            ::std::format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn holds_for_every_case(x in 0i64..10, v in prop::collection::vec(0u32..5, 0..8)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(v.len() < 8);
            prop_assert_ne!(x, 10);
        }

        #[test]
        fn early_ok_return_is_accepted(x in 0i64..10) {
            if x >= 0 {
                return Ok(());
            }
            prop_assert!(false, "unreachable: x is never negative here");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        // The harness must be able to FAIL: a property runner that cannot
        // reject a false property would green-light every test above it.
        #[test]
        #[should_panic(expected = "proptest case 1/3 failed")]
        fn false_property_panics(x in 0i64..10) {
            prop_assert_eq!(x, -1, "x in 0..10 is never -1");
        }
    }
}
