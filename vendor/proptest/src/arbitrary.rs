//! `any::<T>()` — the "whole domain of `T`" strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy (mirrors
/// `proptest::arbitrary::Arbitrary` without the parameterization).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+ $(,)?) => { $(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+ };
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII: plenty of variety without Unicode edge cases the
        // workspace's strategies never rely on.
        char::from(b' ' + rng.below(95) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_signs_and_magnitudes() {
        let mut rng = TestRng::for_case("arbitrary::tests", 0);
        let strat = any::<i64>();
        let draws: Vec<i64> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&v| v < 0));
        assert!(draws.iter().any(|&v| v > 0));
        assert!(draws.iter().any(|&v| v.unsigned_abs() > 1 << 60));
        let bools: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(bools.contains(&true) && bools.contains(&false));
        for _ in 0..100 {
            let c = char::arbitrary(&mut rng);
            assert!(c.is_ascii_graphic() || c == ' ');
        }
    }
}
