//! String strategies from pattern literals: `"[a-z]{0,12}"` used directly as
//! a `Strategy<Value = String>`, as in real proptest.
//!
//! Supported pattern subset: a concatenation of atoms, where an atom is a
//! character class `[...]` (literal characters and `a-z` ranges) or a single
//! literal character, optionally followed by `{n}` or `{m,n}` repetition.
//! That covers every pattern in this workspace's tests; anything else
//! panics loudly rather than silently generating the wrong language.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One parsed atom: a set of inclusive character ranges plus a repetition.
#[derive(Debug, Clone)]
struct Atom {
    /// Inclusive `(lo, hi)` alternatives; a literal is a degenerate range.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                + i;
            let mut ranges = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    assert!(
                        chars[j] <= chars[j + 2],
                        "inverted class range in pattern {pattern:?}"
                    );
                    ranges.push((chars[j], chars[j + 2]));
                    j += 3;
                } else {
                    ranges.push((chars[j], chars[j]));
                    j += 1;
                }
            }
            assert!(!ranges.is_empty(), "empty character class in pattern {pattern:?}");
            i = close + 1;
            ranges
        } else {
            assert!(
                !"{}()|*+?.\\^$".contains(chars[i]),
                "unsupported regex syntax {:?} in pattern {pattern:?} \
                 (this shim handles classes + repetition only)",
                chars[i]
            );
            let lit = chars[i];
            i += 1;
            vec![(lit, lit)]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let reps = match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().unwrap_or_else(|_| panic!("bad repetition in {pattern:?}")),
                    n.trim().parse().unwrap_or_else(|_| panic!("bad repetition in {pattern:?}")),
                ),
                None => {
                    let n = body
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repetition in {pattern:?}"));
                    (n, n)
                }
            };
            assert!(reps.0 <= reps.1, "inverted repetition in pattern {pattern:?}");
            i = close + 1;
            reps
        } else {
            (1, 1)
        };
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn draw(atoms: &[Atom], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in atoms {
        let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..reps {
            // Weight alternatives by their width so every character in the
            // class is equally likely.
            let total: u64 = atom.ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in &atom.ranges {
                let width = hi as u64 - lo as u64 + 1;
                if pick < width {
                    out.push(char::from_u32(lo as u32 + pick as u32).expect("ASCII class"));
                    break;
                }
                pick -= width;
            }
        }
    }
    out
}

/// String literals are string strategies (`"[a-z]{1,3}"` ⇒ matching
/// `String`s). Parsing happens per draw; pattern literals are a few bytes,
/// so this stays invisible next to the properties under test.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        draw(&parse(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string::tests", 0)
    }

    #[test]
    fn class_with_bounded_repetition() {
        let mut r = rng();
        let mut seen_empty = false;
        let mut seen_long = false;
        for _ in 0..300 {
            let s = "[a-z]{0,12}".generate(&mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            seen_empty |= s.is_empty();
            seen_long |= s.len() >= 10;
        }
        assert!(seen_empty && seen_long, "repetition bounds should both be reachable");
    }

    #[test]
    fn printable_ascii_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut r);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_repetition_and_multi_range_classes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-dx]{1}".generate(&mut r);
            assert_eq!(s.chars().count(), 1);
            let c = s.chars().next().unwrap();
            assert!(('a'..='d').contains(&c) || c == 'x');
        }
    }

    #[test]
    fn concatenation_of_atoms() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "x[0-9]{2}y".generate(&mut r);
            assert_eq!(s.len(), 4);
            assert!(s.starts_with('x') && s.ends_with('y'));
            assert!(s[1..3].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn unsupported_syntax_panics() {
        let _ = "(a|b)".generate(&mut rng());
    }
}
