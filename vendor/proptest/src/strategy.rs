//! The [`Strategy`] trait and the built-in strategies over ranges, tuples,
//! and constants.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type. Mirrors the generation half
/// of `proptest::strategy::Strategy`; there is no shrinking, so a strategy
/// is simply a function from an RNG to a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy behind a shared reference is itself a strategy; this is what
/// lets the `proptest!` macro generate from `&strategy`.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value (mirrors `proptest::prelude::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $unsigned:ty),+ $(,)?) => { $(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                // Two's-complement trick: the unsigned difference is the
                // width for signed and unsigned types alike, and wrapping
                // addition of an offset below it lands back in range.
                let width = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                let offset = rng.below(width as u64) as $unsigned;
                self.start.wrapping_add(offset as $t)
            }
        }
    )+ };
}

int_range_strategy! {
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding in the interpolation could land exactly on `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => { $(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+ };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            assert!((-5i64..7).contains(&(-5i64..7).generate(&mut r)));
            assert!((0u32..3).contains(&(0u32..3).generate(&mut r)));
            assert!((1usize..2).contains(&(1usize..2).generate(&mut r)));
        }
        // Full-width signed range exercises the wrapping arithmetic.
        for _ in 0..100 {
            let _ = (i64::MIN..i64::MAX).generate(&mut r);
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (0.25f64..0.5).generate(&mut r);
            assert!((0.25..0.5).contains(&v));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut r = rng();
        let strat = (0i64..10, 1usize..4).prop_map(|(v, n)| vec![v; n]);
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
        assert_eq!(Just(7).generate(&mut r), 7);
    }
}
