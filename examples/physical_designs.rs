//! Compare the five row-store physical designs of Section 4 on one query,
//! showing the I/O and simulated-time consequences of each design choice.
//!
//! ```text
//! cargo run --release --example physical_designs
//! ```

use cvr::data::{gen::SsbConfig, queries};
use cvr::row::designs::{RowDb, RowDesign};
use cvr::storage::io::{DiskModel, IoSession};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let tables = Arc::new(SsbConfig::with_scale(0.01).generate());
    let disk = DiskModel::default();
    // Q2.1 — the query whose plans Section 6.2.1 dissects design by design.
    let q = queries::query(2, 1);
    println!("SSBM Q2.1 across the five row-store physical designs (sf 0.01):\n");
    println!(
        "{:<24}{:>12}{:>10}{:>10}{:>12}{:>12}",
        "design", "MB read", "pages", "seeks", "cpu ms", "model s"
    );

    let mut reference = None;
    for design in RowDesign::ALL {
        let db = RowDb::build(tables.clone(), design);
        let io = IoSession::unmetered();
        let start = Instant::now();
        let out = db.execute(&q, &io);
        let cpu = start.elapsed();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "designs must agree"),
        }
        let stats = io.stats();
        println!(
            "{:<24}{:>12.2}{:>10}{:>10}{:>12.1}{:>12.3}",
            design.label(),
            stats.bytes_read as f64 / 1e6,
            stats.pages_read,
            stats.seeks,
            cpu.as_secs_f64() * 1e3,
            (cpu + disk.io_time(&stats)).as_secs_f64()
        );
    }
    println!(
        "\nAll five designs return identical results; the paper's Figure 6\n\
         ordering (MV < T < T(B) < VP < AI) falls out of the bytes, seeks and\n\
         per-tuple work each design pays."
    );
}
