//! OLAP roll-up riding between-predicate rewriting.
//!
//! Section 5.4.2 argues the rewriting applies "more often than one might
//! initially expect" because warehouse dimensions carry hierarchies of
//! increasingly finer granularity, and analysts roll up through them:
//! "tell me profit by region, tell me profit by nation, tell me profit by
//! city". This example runs exactly that drill-down and shows that *every*
//! level's predicate rewrites to a between-predicate on the fact table's
//! foreign keys — no hash table in sight until the data itself is
//! non-contiguous.
//!
//! ```text
//! cargo run --release --example rollup
//! ```

use cvr::core::invisible::{phase1_key_pred, FactKeyPred};
use cvr::core::{ColumnEngine, EngineConfig};
use cvr::data::gen::SsbConfig;
use cvr::data::queries::{AggExpr, DimPredicate, GroupColumn, Pred, QueryId, SsbQuery};
use cvr::data::schema::Dim;
use cvr::data::value::Value;
use cvr::storage::io::IoSession;
use std::sync::Arc;

fn profit_query(column: &'static str, value: &str, group: &'static str) -> SsbQuery {
    SsbQuery {
        id: QueryId::new(4, 1),
        dim_predicates: vec![DimPredicate {
            dim: Dim::Supplier,
            column,
            pred: Pred::Eq(Value::str(value)),
        }],
        fact_predicates: vec![],
        group_by: vec![GroupColumn { dim: Dim::Supplier, column: group }],
        aggregate: AggExpr::SumRevenueMinusSupplyCost,
        paper_selectivity: 0.2,
    }
}

fn main() {
    let tables = Arc::new(SsbConfig::with_scale(0.01).generate());
    let engine = ColumnEngine::new(tables);
    let io = IoSession::unmetered();
    let cfg = EngineConfig::FULL;
    let db = engine.db(cfg);

    // The drill-down: profit by nation within a region, then by city within
    // a nation — each level one equality predicate deeper in the supplier
    // hierarchy (region, nation, city).
    let levels = [
        ("s_region", "ASIA", "s_nation", "profit by nation in ASIA"),
        ("s_nation", "CHINA", "s_city", "profit by city in CHINA"),
    ];

    for (pred_col, pred_val, group_col, title) in levels {
        let q = profit_query(pred_col, pred_val, group_col);
        let kp = phase1_key_pred(db, &q, Dim::Supplier, cfg, &io).expect("restricted");
        let rewrite = match &kp {
            FactKeyPred::Between(lo, hi) => format!("lo_suppkey BETWEEN {lo} AND {hi}"),
            FactKeyPred::KeySet(s) => format!("hash set of {} keys", s.len()),
        };
        println!("{title}\n  predicate {pred_col} = {pred_val:?} rewrote to: {rewrite}");
        let out = engine.execute(&q, cfg, &io);
        for (key, profit) in out.rows.iter().take(4) {
            println!("    {:<14} profit = {profit}", key[0].to_string());
        }
        if out.rows.len() > 4 {
            println!("    ... {} more groups", out.rows.len() - 4);
        }
        assert!(
            matches!(kp, FactKeyPred::Between(..)),
            "hierarchy predicates must stay contiguous under the sorted projection"
        );
        println!();
    }
    println!(
        "Both roll-up levels rewrote to between-predicates: the supplier\n\
         projection is sorted (region, nation, city), so equality at any\n\
         level selects a contiguous run of reassigned keys — Section 5.4.2's\n\
         argument, executable."
    );
}
