//! Quickstart: generate a small SSBM database, run one query on both
//! engines, and compare results and simulated I/O.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cvr::core::{ColumnEngine, EngineConfig};
use cvr::data::{gen::SsbConfig, queries};
use cvr::row::designs::{RowDb, RowDesign};
use cvr::storage::io::{DiskModel, IoSession};
use std::sync::Arc;

fn main() {
    // 1. Generate: SF 0.01 = 60 000 LINEORDER rows (the paper ran SF 10).
    let tables = Arc::new(SsbConfig::with_scale(0.01).generate());
    println!(
        "generated SSBM sf=0.01: lineorder={} customer={} supplier={} part={} date={}",
        tables.lineorder.num_rows(),
        tables.customer.num_rows(),
        tables.supplier.num_rows(),
        tables.part.num_rows(),
        tables.date.num_rows()
    );

    // 2. Build both engines over the same logical data.
    let column_engine = ColumnEngine::new(tables.clone());
    let row_engine = RowDb::build(tables.clone(), RowDesign::Traditional);

    // 3. Run SSBM Q3.1 — the paper's running example:
    //    revenue of ASIA customers buying from ASIA suppliers, 1992-1997,
    //    grouped by (customer nation, supplier nation, year).
    let q = queries::query(3, 1);

    let io_cs = IoSession::unmetered();
    let cs = column_engine.execute(&q, EngineConfig::FULL, &io_cs);
    let io_rs = IoSession::unmetered();
    let rs = row_engine.execute(&q, &io_rs);
    assert_eq!(cs, rs, "engines must agree");

    println!("\nQ3.1 → {} groups (first 5):", cs.len());
    for (key, revenue) in cs.rows.iter().take(5) {
        let parts: Vec<String> = key.iter().map(|v| v.to_string()).collect();
        println!("  {:<40} revenue = {revenue}", parts.join(" / "));
    }

    // 4. The whole point of the paper, in two lines of I/O accounting:
    let disk = DiskModel::default();
    let (cs_io, rs_io) = (io_cs.stats(), io_rs.stats());
    println!("\nsimulated I/O for Q3.1 (200 MB/s disk model):");
    println!(
        "  column store: {:>8.2} MB read  → {:>6.3}s modeled I/O",
        cs_io.bytes_read as f64 / 1e6,
        disk.io_time(&cs_io).as_secs_f64()
    );
    println!(
        "  row store:    {:>8.2} MB read  → {:>6.3}s modeled I/O",
        rs_io.bytes_read as f64 / 1e6,
        disk.io_time(&rs_io).as_secs_f64()
    );
    println!(
        "\nthe column store read {:.1}x less data — and the executor-level\n\
         optimizations (Figure 7) stack on top of that.",
        rs_io.bytes_read as f64 / cs_io.bytes_read as f64
    );
}
