//! Compression laboratory: what the column store's encoders choose per
//! column, what it costs on disk, and what operating directly on
//! compressed data buys (Section 5.1).
//!
//! ```text
//! cargo run --release --example compression_lab
//! ```

use cvr::core::scan::{scan_int, scan_int_where, IntScanPred};
use cvr::core::CStoreDb;
use cvr::data::gen::SsbConfig;
use cvr::storage::encode::{Column, IntColumn};
use cvr::storage::io::IoSession;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let tables = Arc::new(SsbConfig::with_scale(0.05).generate());
    let compressed = CStoreDb::build(tables.clone(), true);
    let plain = CStoreDb::build(tables.clone(), false);

    println!("fact projection encodings (sf 0.05, sorted by orderdate,quantity,discount):\n");
    println!("{:<20}{:>14}{:>14}{:>8}  encoding", "column", "plain B", "encoded B", "ratio");
    for col in compressed.fact.columns() {
        let plain_col = plain.fact.column(&col.name);
        let enc = match &col.column {
            Column::Int(i) if i.is_rle() => format!("RLE ({} runs)", i.runs().len()),
            Column::Int(IntColumn::Packed { packed, .. }) => {
                format!("FoR bit-packed ({} bit lanes)", packed.lane_bits())
            }
            Column::Int(_) => "plain int (byte-packed)".to_string(),
            Column::Str(s) if s.is_dict() => {
                let (dict, codes) = s.dict_parts();
                format!("dict ({} entries, {} bit lanes)", dict.len(), codes.lane_bits())
            }
            Column::Str(_) => "plain varchar".to_string(),
        };
        println!(
            "{:<20}{:>14}{:>14}{:>8.1}  {enc}",
            col.name,
            plain_col.bytes(),
            col.bytes(),
            plain_col.bytes() as f64 / col.bytes().max(1) as f64,
        );
    }

    // Direct operation on compressed data: predicate on the RLE orderdate
    // column evaluates once per run instead of once per row.
    let io = IoSession::unmetered();
    let rle_col = compressed.fact.column("lo_orderdate");
    let plain_col = plain.fact.column("lo_orderdate");
    let pred = |v: i64| (19930101..=19931231).contains(&v);

    let t = Instant::now();
    let a = scan_int_where(rle_col, pred, true, &io);
    let rle_time = t.elapsed();
    let t = Instant::now();
    let b = scan_int_where(plain_col, pred, true, &io);
    let plain_time = t.elapsed();
    assert_eq!(a.to_vec(), b.to_vec());
    println!(
        "\npredicate `orderdate in 1993` over {} rows:\n  on RLE runs:    {:>8.1} µs\n  on plain array: {:>8.1} µs  ({:.0}x more work)",
        compressed.fact_rows(),
        rle_time.as_secs_f64() * 1e6,
        plain_time.as_secs_f64() * 1e6,
        plain_time.as_secs_f64() / rle_time.as_secs_f64().max(1e-9),
    );
    // Word-parallel kernels on truly bit-packed data: the quantity column
    // bit-packs under compression, and a range predicate over it runs as
    // SWAR compares on the packed words — versus the plain i64 scan.
    let packed_col = compressed.fact.column("lo_quantity");
    let plain_q = plain.fact.column("lo_quantity");
    if packed_col.column.as_int().is_packed() {
        let range = IntScanPred::Range { lo: 1, hi: 25 };
        let t = Instant::now();
        let a = scan_int(packed_col, &range, true, &io);
        let packed_time = t.elapsed();
        let t = Instant::now();
        let b = scan_int(plain_q, &range, true, &io);
        let plain_time = t.elapsed();
        assert_eq!(a.count(), b.count());
        println!(
            "\npredicate `quantity <= 25` over {} rows:\n  SWAR on packed words: {:>8.1} µs\n  mask scan on plain:   {:>8.1} µs",
            compressed.fact_rows(),
            packed_time.as_secs_f64() * 1e6,
            plain_time.as_secs_f64() * 1e6,
        );
    }

    println!(
        "\ntotal fact bytes: compressed {:.2} MB vs plain {:.2} MB ({:.1}x)",
        compressed.fact_bytes() as f64 / 1e6,
        plain.fact_bytes() as f64 / 1e6,
        plain.fact_bytes() as f64 / compressed.fact_bytes() as f64
    );
}
