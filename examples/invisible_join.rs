//! The invisible join, phase by phase, on the paper's own worked example.
//!
//! Figures 2-4 of the paper trace Query 3.1 over a 7-row fact table with
//! three customers, two suppliers, and three dates. This example rebuilds
//! that exact data, runs each phase of the invisible join, and prints the
//! intermediate results so they can be checked against the figures.
//!
//! ```text
//! cargo run --example invisible_join
//! ```

use cvr::core::invisible::{phase1_key_pred, phase2_probe, FactKeyPred};
use cvr::core::{ColumnEngine, EngineConfig};
use cvr::data::gen::{SsbConfig, SsbTables};
use cvr::data::queries::{AggExpr, GroupColumn, QueryId};
use cvr::data::queries::{DimPredicate, Pred, SsbQuery};
use cvr::data::schema::{star_schema, Dim};
use cvr::data::table::{ColumnData, TableData};
use cvr::data::value::Value;
use cvr::storage::io::IoSession;
use std::sync::Arc;

/// Build the Figure 2 sample database. Columns the figures do not show are
/// filled with neutral values; the joins and predicates only touch what the
/// figures draw.
fn figure2_tables() -> SsbTables {
    let schema = star_schema();

    // Customers: 1=China/Asia, 2=France/Europe, 3=India/Asia (Figure 2).
    let customer = TableData::new(
        schema.customer.clone(),
        vec![
            ColumnData::Int(vec![1, 2, 3]),
            ColumnData::Str(vec!["Customer#1".into(), "Customer#2".into(), "Customer#3".into()]),
            ColumnData::Str(vec!["addr".into(); 3]),
            ColumnData::Str(vec!["CHINA    0".into(), "FRANCE   0".into(), "INDIA    0".into()]),
            ColumnData::Str(vec!["CHINA".into(), "FRANCE".into(), "INDIA".into()]),
            ColumnData::Str(vec!["ASIA".into(), "EUROPE".into(), "ASIA".into()]),
            ColumnData::Str(vec!["11-111".into(); 3]),
            ColumnData::Str(vec!["BUILDING".into(); 3]),
        ],
    );
    // Suppliers: 1=Russia/Asia, 2=Spain/Europe (Figure 2). (The paper's
    // figure places Russia in Asia; we keep its data verbatim.)
    let supplier = TableData::new(
        schema.supplier.clone(),
        vec![
            ColumnData::Int(vec![1, 2]),
            ColumnData::Str(vec!["Supplier#1".into(), "Supplier#2".into()]),
            ColumnData::Str(vec!["addr".into(); 2]),
            ColumnData::Str(vec!["RUSSIA   0".into(), "SPAIN    0".into()]),
            ColumnData::Str(vec!["RUSSIA".into(), "SPAIN".into()]),
            ColumnData::Str(vec!["ASIA".into(), "EUROPE".into()]),
            ColumnData::Str(vec!["22-222".into(); 2]),
        ],
    );
    // Dates: 01011997, 01021997, 01031997 — all year 1997 (Figure 2). The
    // figure writes them month-day-year; we keep SSB's yyyymmdd form.
    let datekeys = [19970101i64, 19970102, 19970103];
    let date = TableData::new(
        schema.date.clone(),
        vec![
            ColumnData::Int(datekeys.to_vec()),
            ColumnData::Str(vec!["Jan 1, 1997".into(), "Jan 2, 1997".into(), "Jan 3, 1997".into()]),
            ColumnData::Str(vec!["Wednesday".into(); 3]),
            ColumnData::Str(vec!["Jan".into(); 3]),
            ColumnData::Int(vec![1997; 3]),
            ColumnData::Int(vec![199701; 3]),
            ColumnData::Str(vec!["Jan1997".into(); 3]),
            ColumnData::Int(vec![1, 2, 3]),
            ColumnData::Int(vec![1, 2, 3]),
            ColumnData::Int(vec![1, 2, 3]),
            ColumnData::Int(vec![1; 3]),
            ColumnData::Int(vec![1; 3]),
            ColumnData::Str(vec!["Christmas".into(); 3]),
            ColumnData::Int(vec![0; 3]),
            ColumnData::Int(vec![0; 3]),
            ColumnData::Int(vec![0; 3]),
            ColumnData::Int(vec![1; 3]),
        ],
    );
    // Fact table, 7 rows exactly as Figure 3 draws it:
    // orderkey 1..7, custkey [3,1,2,1,2,1,3], suppkey [1,2,1,1,2,2,2],
    // orderdate, revenue [43256,33333,12121,23233,45456,43251,34235].
    let custkey = vec![3i64, 1, 2, 1, 2, 1, 3];
    let suppkey = vec![1i64, 2, 1, 1, 2, 2, 2];
    let orderdate = vec![19970101i64, 19970101, 19970102, 19970102, 19970102, 19970103, 19970103];
    let revenue = vec![43256i64, 33333, 12121, 23233, 45456, 43251, 34235];
    let n = 7usize;
    let lineorder = TableData::new(
        schema.lineorder.clone(),
        vec![
            ColumnData::Int((1..=7).collect()),
            ColumnData::Int(vec![1; n]),
            ColumnData::Int(custkey),
            ColumnData::Int(vec![1; n]), // partkey (PART unused here; key 1)
            ColumnData::Int(suppkey),
            ColumnData::Int(orderdate.clone()),
            ColumnData::Str(vec!["1-URGENT".into(); n]),
            ColumnData::Int(vec![0; n]),
            ColumnData::Int(vec![10; n]),
            ColumnData::Int(vec![100; n]),
            ColumnData::Int(vec![100; n]),
            ColumnData::Int(vec![0; n]),
            ColumnData::Int(revenue),
            ColumnData::Int(vec![60; n]),
            ColumnData::Int(vec![0; n]),
            ColumnData::Int(orderdate),
            ColumnData::Str(vec!["AIR".into(); n]),
        ],
    );
    // A one-row PART table to keep FKs valid.
    let part = TableData::new(
        schema.part.clone(),
        vec![
            ColumnData::Int(vec![1]),
            ColumnData::Str(vec!["azure blue".into()]),
            ColumnData::Str(vec!["MFGR#1".into()]),
            ColumnData::Str(vec!["MFGR#11".into()]),
            ColumnData::Str(vec!["MFGR#1101".into()]),
            ColumnData::Str(vec!["azure".into()]),
            ColumnData::Str(vec!["STANDARD BRUSHED BRASS".into()]),
            ColumnData::Int(vec![10]),
            ColumnData::Str(vec!["SM BAG".into()]),
        ],
    );

    SsbTables {
        config: SsbConfig { sf: 0.0, seed: 0 },
        schema,
        lineorder,
        customer,
        supplier,
        part,
        date,
    }
}

/// Query 3.1's predicates against the sample data (year >= 1992 and <= 1997,
/// regions ASIA/ASIA), grouped by (c_nation, s_nation, d_year).
fn query31() -> SsbQuery {
    SsbQuery {
        id: QueryId::new(3, 1),
        dim_predicates: vec![
            DimPredicate {
                dim: Dim::Customer,
                column: "c_region",
                pred: Pred::Eq(Value::str("ASIA")),
            },
            DimPredicate {
                dim: Dim::Supplier,
                column: "s_region",
                pred: Pred::Eq(Value::str("ASIA")),
            },
            DimPredicate {
                dim: Dim::Date,
                column: "d_year",
                pred: Pred::Between(Value::Int(1992), Value::Int(1997)),
            },
        ],
        fact_predicates: vec![],
        group_by: vec![
            GroupColumn { dim: Dim::Customer, column: "c_nation" },
            GroupColumn { dim: Dim::Supplier, column: "s_nation" },
            GroupColumn { dim: Dim::Date, column: "d_year" },
        ],
        aggregate: AggExpr::SumRevenue,
        paper_selectivity: 3.4e-2,
    }
}

fn describe(kp: &FactKeyPred) -> String {
    match kp {
        FactKeyPred::Between(lo, hi) => format!("BETWEEN {lo} AND {hi}"),
        FactKeyPred::KeySet(s) => format!("hash set of {} keys", s.len()),
    }
}

fn main() {
    let tables = Arc::new(figure2_tables());
    let engine = ColumnEngine::new(tables);
    let q = query31();
    let cfg = EngineConfig::FULL;
    let db = engine.db(cfg);
    let io = IoSession::unmetered();

    println!("== Phase 1 (Figure 2): dimension predicates → fact key predicates ==\n");
    let mut preds = Vec::new();
    for dim in [Dim::Customer, Dim::Supplier, Dim::Date] {
        let kp = phase1_key_pred(db, &q, dim, cfg, &io).expect("restricted");
        println!("  {:<9} predicate rewritten to: fk {}", dim.table_name(), describe(&kp));
        preds.push((dim, kp));
    }
    println!(
        "\n  (the paper's Figure 2 builds hash tables with keys {{1,3}}, {{1}}, and\n\
         \x20  all three dates; hierarchy sorting + key reassignment lets this\n\
         \x20  implementation rewrite all three to between-predicates instead)\n"
    );

    println!("== Phase 2 (Figure 3): probe fact FK columns, intersect positions ==\n");
    let mut pos: Option<cvr::core::PosList> = None;
    for (dim, kp) in &preds {
        let pl = phase2_probe(db, *dim, kp, cfg, &io);
        println!("  {:<12} matching fact positions: {:?}", dim.fact_fk_column(), pl.to_vec());
        pos = Some(match pos {
            None => pl,
            Some(acc) => acc.intersect(&pl),
        });
    }
    let pos = pos.unwrap();
    println!(
        "\n  intersected position list: {:?}  (Figure 3's bitmap 0010010 over\n\
         \x20  the paper's row order; positions differ because the projection is\n\
         \x20  re-sorted on orderdate)\n",
        pos.to_vec()
    );

    println!("== Phase 3 (Figure 4): extract dimension values at those positions ==\n");
    let out = engine.execute(&q, cfg, &io);
    for (key, revenue) in &out.rows {
        let parts: Vec<String> = key.iter().map(|v| v.to_string()).collect();
        println!("  ({}) → revenue {}", parts.join(", "), revenue);
    }
    println!(
        "\nFigure 4's join result is (China, Russia, 1997) and (India, Russia, 1997)\n\
         — the fact rows with orderkeys 4 and 1, revenues 23233 and 43256."
    );
    assert_eq!(out.rows.len(), 2, "exactly the two Figure 4 rows must survive");
}
