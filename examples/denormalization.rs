//! Denormalization vs the invisible join (Section 6.3.3 / Figure 8):
//! pre-joining the star schema into one wide table and querying it
//! join-free, at the paper's three compression levels.
//!
//! ```text
//! cargo run --release --example denormalization
//! ```

use cvr::core::{ColumnEngine, DenormDb, DenormVariant, EngineConfig};
use cvr::data::{gen::SsbConfig, queries};
use cvr::storage::io::{DiskModel, IoSession};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let tables = Arc::new(SsbConfig::with_scale(0.01).generate());
    let disk = DiskModel::default();
    // Q3.1: two predicates + three group-by columns from dimensions — the
    // kind of query where the paper found denormalization *loses*.
    let q = queries::query(3, 1);

    println!("SSBM Q3.1: invisible join vs pre-joined tables (sf 0.01)\n");
    println!(
        "{:<14}{:>14}{:>14}{:>12}{:>12}",
        "variant", "stored MB", "MB read", "cpu ms", "model s"
    );

    let engine = ColumnEngine::new(tables.clone());
    let io = IoSession::unmetered();
    let start = Instant::now();
    let base_out = engine.execute(&q, EngineConfig::FULL, &io);
    let cpu = start.elapsed();
    let stats = io.stats();
    println!(
        "{:<14}{:>14.2}{:>14.2}{:>12.1}{:>12.3}",
        "Base (IJ)",
        engine.db(EngineConfig::FULL).fact_bytes() as f64 / 1e6,
        stats.bytes_read as f64 / 1e6,
        cpu.as_secs_f64() * 1e3,
        (cpu + disk.io_time(&stats)).as_secs_f64()
    );

    for variant in
        [DenormVariant::NoCompression, DenormVariant::IntCompression, DenormVariant::MaxCompression]
    {
        let db = DenormDb::build(tables.clone(), variant);
        let io = IoSession::unmetered();
        let start = Instant::now();
        let out = db.execute(&q, EngineConfig::FULL, &io);
        let cpu = start.elapsed();
        assert_eq!(out, base_out, "denormalized variants must agree with the join");
        let stats = io.stats();
        println!(
            "{:<14}{:>14.2}{:>14.2}{:>12.1}{:>12.3}",
            variant.label(),
            db.bytes() as f64 / 1e6,
            stats.bytes_read as f64 / 1e6,
            cpu.as_secs_f64() * 1e3,
            (cpu + disk.io_time(&stats)).as_secs_f64()
        );
    }
    println!(
        "\nThe paper's conclusion: \"denormalization is actually not very useful\n\
         in column-stores\" — the invisible join makes joins cheap enough that\n\
         inlining dimension values mostly just widens the scans."
    );
}
