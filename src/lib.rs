//! # cvr — Column-stores vs. Row-stores, reproduced in Rust
//!
//! A from-scratch reproduction of Abadi, Madden, and Hachem,
//! *"Column-Stores vs. Row-Stores: How Different Are They Really?"*
//! (SIGMOD 2008): two complete execution engines — a C-Store-style column
//! engine with the paper's **invisible join**, and a System-X-style row
//! engine with the paper's five physical designs — over a shared Star
//! Schema Benchmark substrate and a metered simulated disk.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`data`] (`cvr-data`) — SSBM schema, generator, 13-query catalog,
//!   reference evaluator;
//! * [`storage`] (`cvr-storage`) — heap files, column encodings, buffer
//!   pool, disk model;
//! * [`index`] (`cvr-index`) — B+Tree, bitmap index, Bloom filter, hash
//!   index;
//! * [`row`] (`cvr-row`) — the row engine: T, T(B), MV, VP, AI designs;
//! * [`core`] (`cvr-core`) — the column engine: invisible join, late
//!   materialization, compressed execution, Row-MV, denormalization;
//! * [`plan`] (`cvr-plan`) — the statistics-driven cost-based planner over
//!   both engines' physical-design space;
//! * [`server`] (`cvr-server`) — the front door: SQL parser, unified
//!   `Session` API, wire protocol, and a concurrent TCP server.
//!
//! ```
//! use cvr::core::{ColumnEngine, EngineConfig};
//! use cvr::data::{gen::SsbConfig, queries};
//! use cvr::row::designs::{RowDb, RowDesign};
//! use cvr::storage::io::IoSession;
//! use std::sync::Arc;
//!
//! let tables = Arc::new(SsbConfig::with_scale(0.0005).generate());
//! let cs = ColumnEngine::new(tables.clone());
//! let rs = RowDb::build(tables.clone(), RowDesign::Traditional);
//! let io = IoSession::unmetered();
//! let q = queries::query(2, 1);
//! // Same answer from both worlds.
//! assert_eq!(cs.execute(&q, EngineConfig::FULL, &io), rs.execute(&q, &io));
//! ```

#![warn(missing_docs)]

pub use cvr_core as core;
pub use cvr_data as data;
pub use cvr_index as index;
pub use cvr_plan as plan;
pub use cvr_row as row;
pub use cvr_server as server;
pub use cvr_storage as storage;
