//! The differential harness locking down morsel-driven parallel execution.
//!
//! Every cell of (query × plan shape × encoding × row design × seed × scale
//! factor × thread count) must agree with `cvr_data::reference` — and the
//! parallel cells must agree with the serial ones *byte for byte*, including
//! the merged I/O accounting. This is the contract that lets the `scaling`
//! binary make speed claims: a parallel execution is only faster, never
//! different.
//!
//! Structure:
//! * [`column_plan_shapes_match_reference`] — the three plan shapes
//!   (invisible join, late-materialized join, early materialization) at both
//!   compression settings, against the brute-force reference, at two seeds
//!   and two scale factors;
//! * [`row_designs_match_reference`] — the five row-store physical designs
//!   over the same datasets;
//! * [`thread_counts_are_byte_identical`] — thread counts {1, 2, 4, 8}
//!   produce identical [`QueryOutput`]s and the merged parallel
//!   [`cvr::storage::io::IoStats`] equal the serial run's bytes, pages and
//!   seeks for every plan shape;
//! * [`parallel_engine_matches_reference_directly`] — the parallel path vs
//!   the reference evaluator, not just vs the serial engine.

use cvr::core::morsel::Parallelism;
use cvr::core::{ColumnEngine, EngineConfig};
use cvr::data::gen::{SsbConfig, SsbTables};
use cvr::data::queries::{all_queries, SsbQuery};
use cvr::data::reference;
use cvr::data::result::QueryOutput;
use cvr::data::workload::WorkloadConfig;
use cvr::plan::{Catalog, PhysicalChoice, Planner};
use cvr::row::designs::{RowDb, RowDesign};
use cvr::storage::io::IoSession;
use std::sync::Arc;

/// Two seeds × two scale factors: small enough to stay fast, different
/// enough that sort orders, dictionary layouts and run structures all vary.
fn datasets() -> Vec<Arc<SsbTables>> {
    let mut out = Vec::new();
    for sf in [0.0008, 0.0015] {
        for seed in [7, 4242] {
            out.push(Arc::new(SsbConfig { sf, seed }.generate()));
        }
    }
    out
}

fn expected(tables: &SsbTables) -> Vec<QueryOutput> {
    all_queries().iter().map(|q| reference::evaluate(tables, q)).collect()
}

/// The three column plan shapes at both compression settings:
/// invisible join (`tICL`/`tIcL`), late-materialized join (`tiCL`/`ticL`),
/// early materialization (`tICl`/`tIcl`).
const PLAN_SHAPES: [&str; 6] = ["tICL", "tIcL", "tiCL", "ticL", "tICl", "tIcl"];

#[test]
fn column_plan_shapes_match_reference() {
    for tables in datasets() {
        let exp = expected(&tables);
        let engine = ColumnEngine::new(tables.clone());
        let io = IoSession::unmetered();
        for code in PLAN_SHAPES {
            let cfg = EngineConfig::parse(code);
            for (q, e) in all_queries().iter().zip(&exp) {
                assert_eq!(
                    &engine.execute(q, cfg, &io),
                    e,
                    "{code} disagrees with reference on {} ({} fact rows)",
                    q.id,
                    tables.lineorder.num_rows()
                );
            }
        }
    }
}

#[test]
fn row_designs_match_reference() {
    for tables in datasets() {
        let exp = expected(&tables);
        let io = IoSession::unmetered();
        for design in RowDesign::ALL {
            let db = RowDb::build(tables.clone(), design);
            for (q, e) in all_queries().iter().zip(&exp) {
                assert_eq!(
                    &db.execute(q, &io),
                    e,
                    "{} disagrees with reference on {} ({} fact rows)",
                    design.label(),
                    q.id,
                    tables.lineorder.num_rows()
                );
            }
        }
    }
}

#[test]
fn thread_counts_are_byte_identical() {
    // One mid-sized dataset; small morsels so even it fans out widely.
    let tables = Arc::new(SsbConfig { sf: 0.002, seed: 2026 }.generate());
    let engine = ColumnEngine::new(tables);
    let par = |threads| Parallelism { threads, morsel_rows: 384 };
    for code in PLAN_SHAPES {
        let cfg = EngineConfig::parse(code);
        for q in all_queries() {
            let serial_io = IoSession::unmetered();
            let serial = engine.execute_with(&q, cfg, Parallelism::serial(), &serial_io);
            let serial_stats = serial_io.stats();
            for threads in [1, 2, 4, 8] {
                let io = IoSession::unmetered();
                let out = engine.execute_with(&q, cfg, par(threads), &io);
                assert_eq!(out, serial, "{code} {} at {threads} threads", q.id);
                let stats = io.stats();
                assert_eq!(
                    (stats.bytes_read, stats.pages_read, stats.seeks),
                    (serial_stats.bytes_read, serial_stats.pages_read, serial_stats.seeks),
                    "{code} {} at {threads} threads: merged IoStats must equal serial",
                    q.id
                );
            }
        }
    }
}

#[test]
fn bounded_pool_io_matches_serial() {
    // The figure binaries run over a small, evicting buffer pool. Parallel
    // execution must charge the modeled disk in serial plan order there too
    // — op-major log replay, not morsel-major — or the pool thrashes in a
    // way a serial plan would not and the reproduced numbers become
    // machine-dependent. Everything here is deterministic, so exact
    // equality is the right assertion.
    use cvr::storage::io::BufferPool;
    let tables = Arc::new(SsbConfig { sf: 0.004, seed: 6 }.generate());
    let engine = ColumnEngine::new(tables);
    let pool_bytes = 1u64 << 20; // 32 pages: scans always spill
    for code in PLAN_SHAPES {
        let cfg = EngineConfig::parse(code);
        for q in all_queries() {
            let serial_io = IoSession::new(BufferPool::new(pool_bytes));
            let serial = engine.execute_with(&q, cfg, Parallelism::serial(), &serial_io);
            for threads in [2, 4] {
                let io = IoSession::new(BufferPool::new(pool_bytes));
                let par = Parallelism { threads, morsel_rows: 1024 };
                let out = engine.execute_with(&q, cfg, par, &io);
                assert_eq!(out, serial, "{code} {} at {threads} threads", q.id);
                let (a, b) = (serial_io.stats(), io.stats());
                assert_eq!(
                    (a.bytes_read, a.pages_read, a.seeks),
                    (b.bytes_read, b.pages_read, b.seeks),
                    "{code} {} at {threads} threads: bounded-pool IoStats must equal serial",
                    q.id
                );
            }
        }
    }
}

#[test]
fn packed_encodings_run_through_the_grid() {
    // The grid above only proves the word-parallel kernels correct if the
    // compressed stores actually contain truly bit-packed columns. Pin the
    // encoding choices: at every grid dataset, the compressed fact
    // projection must hold frame-of-reference packed integers (the FK and
    // measure-predicate columns the invisible join scans) and bit-packed
    // dictionary codes, and those columns must answer queries identically
    // at every thread count — so a regression in the auto-chooser can't
    // silently take the packed paths out of the differential.
    for tables in datasets() {
        let engine = ColumnEngine::new(tables.clone());
        let db = engine.db(EngineConfig::FULL);
        for fk in ["lo_custkey", "lo_suppkey", "lo_quantity", "lo_discount"] {
            assert!(
                db.fact.column(fk).column.as_int().is_packed(),
                "{fk} must be frame-of-reference bit-packed under compression"
            );
        }
        let (dict, codes) = db.fact.column("lo_shipmode").column.as_str().dict_parts();
        assert!(!dict.is_empty());
        assert_eq!(codes.len() as usize, tables.lineorder.num_rows());
        // And the packed image really is the charged footprint.
        assert_eq!(
            db.fact.column("lo_quantity").bytes(),
            match &db.fact.column("lo_quantity").column {
                cvr::storage::Column::Int(cvr::storage::IntColumn::Packed { packed, .. }) =>
                    packed.bytes(),
                _ => unreachable!(),
            }
        );
    }
}

#[test]
fn code_level_aggregation_is_engaged_and_byte_identical() {
    // The thread-count and plan-shape grids above only prove the code-level
    // aggregator correct if it is actually the path taken. Pin the strategy
    // choice: on every grid dataset's *compressed* store, all 13 paper
    // queries and 30 generated queries must aggregate on composed group ids
    // (every group column is a sorted dictionary or bounded-integer column
    // there), and the uncompressed store must fall back to the Value-keyed
    // reference exactly for queries grouping by a plain string column. Then
    // confirm byte-identity of both stores against the reference across
    // thread counts {1, 2, 4, 8} for a grouped flight-2 and flight-3 query
    // — the representative shapes the aggregation tail dominates.
    use cvr::core::agg::AggStrategy;
    use cvr::core::CStoreDb;

    // Engagement at the benchmark scale: sf 0.02 is where every dimension
    // group column compresses to a dictionary or bounded-integer encoding
    // (at tiny scale factors near-unique brand/city strings stay plain, and
    // the honest answer is the fallback).
    {
        let tables = Arc::new(SsbConfig { sf: 0.02, seed: 7 }.generate());
        let compressed = CStoreDb::build(tables, true);
        let mut queries = all_queries();
        queries.extend(WorkloadConfig { seed: 11, count: 30 }.generate());
        for q in &queries {
            assert!(
                AggStrategy::for_query(&compressed, q).is_code_level(),
                "{}: compressed store must aggregate on dictionary/FoR codes",
                q.id
            );
        }
    }

    for tables in datasets().into_iter().take(2) {
        let engine = ColumnEngine::new(tables.clone());
        let compressed = engine.db(EngineConfig::FULL);
        let plain = engine.db(EngineConfig::parse("tIcL"));
        for q in all_queries() {
            // Strategy choice is exactly "every group column has a code
            // space", on both stores.
            for db in [compressed, plain] {
                let all_coded = q.group_by.iter().all(|g| {
                    cvr::core::extract::CodeSpace::of(db.dim(g.dim).store.column(g.column))
                        .is_some()
                });
                assert_eq!(
                    AggStrategy::for_query(db, &q).is_code_level(),
                    all_coded,
                    "{}: strategy must track the group columns' code spaces",
                    q.id
                );
            }
        }
        for q in [cvr::data::queries::query(2, 1), cvr::data::queries::query(3, 1)] {
            let expected = reference::evaluate(&tables, &q);
            for code in ["tICL", "tIcL"] {
                let cfg = EngineConfig::parse(code);
                for threads in [1, 2, 4, 8] {
                    let io = IoSession::unmetered();
                    let par = Parallelism { threads, morsel_rows: 512 };
                    assert_eq!(
                        engine.execute_with(&q, cfg, par, &io),
                        expected,
                        "{code} {} at {threads} threads",
                        q.id
                    );
                }
            }
        }
    }
}

#[test]
fn planner_picked_plans_are_byte_identical_to_hand_picked() {
    // The cost-based planner's `execute_planned` entry points must be
    // *transparent*: whatever configuration and fact-predicate order the
    // planner picks, executing through the planner produces byte-identical
    // outputs AND byte-identical I/O accounting to handing the engines the
    // same configuration with the same (hand-permuted) query directly —
    // over the 13 paper queries and a generated ad-hoc workload of ≥ 30.
    let tables = Arc::new(SsbConfig { sf: 0.0015, seed: 77 }.generate());
    let engine = ColumnEngine::new(tables.clone());
    let planner = Planner::new(Catalog::build(&engine));
    let mut row_dbs: std::collections::HashMap<RowDesign, RowDb> = std::collections::HashMap::new();

    let mut queries: Vec<SsbQuery> = all_queries();
    queries.extend(WorkloadConfig { seed: 2026, count: 30 }.generate());
    assert!(queries.len() >= 43);

    for q in &queries {
        let plan = planner.plan(q);
        let expected = reference::evaluate(&tables, q);
        let hand_q = q.with_fact_order(&plan.fact_order);
        let (planned_io, hand_io) = (IoSession::unmetered(), IoSession::unmetered());
        let (planned, hand) = match plan.choice {
            PhysicalChoice::Column(cfg) => (
                engine.execute_planned(
                    q,
                    cfg,
                    &plan.fact_order,
                    Parallelism::from_env(),
                    &planned_io,
                ),
                engine.execute_with(&hand_q, cfg, Parallelism::from_env(), &hand_io),
            ),
            PhysicalChoice::Row(design) => {
                let db =
                    row_dbs.entry(design).or_insert_with(|| RowDb::build(tables.clone(), design));
                (
                    db.execute_planned(q, &plan.fact_order, &planned_io),
                    db.execute(&hand_q, &hand_io),
                )
            }
        };
        assert_eq!(planned, expected, "{}: planned execution disagrees with reference", q.id);
        assert_eq!(planned, hand, "{}: planned vs hand-picked outputs differ", q.id);
        let (a, b) = (planned_io.stats(), hand_io.stats());
        assert_eq!(
            (a.bytes_read, a.pages_read, a.seeks),
            (b.bytes_read, b.pages_read, b.seeks),
            "{}: planned vs hand-picked IoStats differ ({})",
            q.id,
            plan.choice.label()
        );
    }
}

#[test]
fn parallel_engine_matches_reference_directly() {
    for tables in datasets().into_iter().take(2) {
        let exp = expected(&tables);
        let engine = ColumnEngine::new(tables);
        let par = Parallelism { threads: 4, morsel_rows: 256 };
        for code in PLAN_SHAPES {
            let cfg = EngineConfig::parse(code);
            for (q, e) in all_queries().iter().zip(&exp) {
                let io = IoSession::unmetered();
                assert_eq!(
                    &engine.execute_with(q, cfg, par, &io),
                    e,
                    "parallel {code} disagrees with reference on {}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn concurrent_sessions_are_byte_identical_to_serial() {
    // The front-door extension of the differential contract: one shared
    // `Session` answering N concurrent SQL streams must produce, for every
    // query, byte-identical output AND IoStats to the same queries run
    // serially through the direct-descriptor path. (The full wire-level
    // version — real TCP connections — lives in crates/server/tests; this
    // cell pins the Session layer itself into the differential grid.)
    use cvr::server::session::QueryResponse;
    use cvr::server::{parser, Session};

    let tables = Arc::new(SsbConfig { sf: 0.0015, seed: 77 }.generate());
    let session = Arc::new(Session::new(tables));

    let mut queries: Vec<SsbQuery> = all_queries();
    queries.extend(WorkloadConfig { seed: 5, count: 10 }.generate());

    // Serial reference via the descriptor path.
    let serial: Vec<(Vec<u8>, cvr::storage::io::IoStats)> = queries
        .iter()
        .map(|q| {
            let r = session.run(q);
            (r.output.to_bytes(), r.io)
        })
        .collect();

    // 8 concurrent SQL streams over the same session.
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let session = session.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                queries
                    .iter()
                    // Stagger the starting point so streams interleave
                    // different queries at any instant.
                    .cycle()
                    .skip(w * 3)
                    .take(queries.len())
                    .map(|q| {
                        let sql = parser::render_sql(q);
                        match session.query(&sql).expect("parse") {
                            QueryResponse::Rows(r) => (q.id, r.output.to_bytes(), r.io),
                            _ => unreachable!(),
                        }
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for (w, worker) in workers.into_iter().enumerate() {
        for (id, bytes, io) in worker.join().expect("session stream") {
            let idx = queries.iter().position(|q| q.id == id).unwrap();
            let (ref_bytes, ref_io) = &serial[idx];
            assert_eq!(&bytes, ref_bytes, "stream {w}: {id} output diverged under concurrency");
            assert_eq!(&io, ref_io, "stream {w}: {id} IoStats diverged under concurrency");
        }
    }
}

#[test]
fn cache_grid_is_byte_identical_to_serial_cold() {
    // The cache-correctness grid: repeated and interleaved queries over
    // {cold, warm, concurrent×8} must all be byte-identical — output bytes
    // AND IoStats — to a serial cold reference taken from a cache-disabled
    // session. A result-cache hit and a filter-intermediate warm execution
    // may change latency, never a byte.
    use cvr::server::session::QueryResponse;
    use cvr::server::{parser, Session};
    use cvr::storage::io::IoStats;

    let tables = Arc::new(SsbConfig { sf: 0.0015, seed: 99 }.generate());
    let mut queries: Vec<SsbQuery> = all_queries();
    queries.extend(WorkloadConfig { seed: 9, count: 8 }.generate());

    // Serial cold reference: cache disabled, so every run executes.
    let cold = Session::with_cache_budget(tables.clone(), Parallelism::from_env(), 0);
    let reference: Vec<(Vec<u8>, IoStats)> = queries
        .iter()
        .map(|q| {
            let r = cold.run(q);
            assert!(!r.cached);
            (r.output.to_bytes(), r.io)
        })
        .collect();

    // Cold then warm, interleaved (q0 q1 ... q0 q1 ...): the first round
    // executes and populates the cache, the second round must hit it.
    let session =
        Arc::new(Session::with_cache_budget(tables.clone(), Parallelism::from_env(), 64 << 20));
    for round in 0..2 {
        for (q, (ref_bytes, ref_io)) in queries.iter().zip(&reference) {
            let r = session.run(q);
            assert_eq!(r.output.to_bytes(), *ref_bytes, "round {round}: {} bytes", q.id);
            assert_eq!(r.io, *ref_io, "round {round}: {} IoStats", q.id);
            assert_eq!(r.cached, round == 1, "round {round}: {} cached flag", q.id);
        }
    }

    // Concurrent×8 over the warmed session, staggered so streams interleave
    // different statements — hits under contention are still identical.
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let session = session.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                queries
                    .iter()
                    .cycle()
                    .skip(w * 3)
                    .take(queries.len())
                    .map(|q| {
                        let sql = parser::render_sql(q);
                        match session.query(&sql).expect("parse") {
                            QueryResponse::Rows(r) => (q.id, r.output.to_bytes(), r.io),
                            _ => unreachable!(),
                        }
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for (w, worker) in workers.into_iter().enumerate() {
        for (id, bytes, io) in worker.join().expect("stream") {
            let idx = queries.iter().position(|q| q.id == id).unwrap();
            let (ref_bytes, ref_io) = &reference[idx];
            assert_eq!(&bytes, ref_bytes, "stream {w}: {id} output diverged on cache grid");
            assert_eq!(&io, ref_io, "stream {w}: {id} IoStats diverged on cache grid");
        }
    }
    let stats = session.cache_stats().expect("cache enabled");
    assert!(stats.result_hits > 0, "the grid must actually exercise hits: {stats:?}");
}

#[test]
fn eviction_under_a_tiny_budget_stays_correct() {
    // Squeeze the cache hard enough that entries are evicted (or refused)
    // constantly; every answer must still match the uncached reference.
    use cvr::server::Session;
    use cvr::storage::io::IoStats;

    let tables = Arc::new(SsbConfig { sf: 0.0015, seed: 99 }.generate());
    let queries: Vec<SsbQuery> = all_queries();
    let cold = Session::with_cache_budget(tables.clone(), Parallelism::from_env(), 0);
    let reference: Vec<(Vec<u8>, IoStats)> = queries
        .iter()
        .map(|q| {
            let r = cold.run(q);
            (r.output.to_bytes(), r.io)
        })
        .collect();

    let tiny = Session::with_cache_budget(tables, Parallelism::from_env(), 2 << 10);
    for round in 0..3 {
        for (q, (ref_bytes, ref_io)) in queries.iter().zip(&reference) {
            let r = tiny.run(q);
            assert_eq!(r.output.to_bytes(), *ref_bytes, "round {round}: {} bytes", q.id);
            assert_eq!(r.io, *ref_io, "round {round}: {} IoStats", q.id);
        }
    }
    let stats = tiny.cache_stats().expect("cache enabled");
    assert!(stats.bytes <= stats.budget, "footprint must respect the budget: {stats:?}");
    assert!(stats.evicted > 0, "a 2 KiB budget over 13 queries must evict: {stats:?}");
}
