//! Property tests over the whole stack: for *arbitrary* generator seeds and
//! scales, the engines must agree with the brute-force reference evaluator.
//!
//! These run fewer cases than the unit-level property tests (each case
//! builds several physical designs), but they exercise the full pipeline —
//! generation → storage → plans → execution — under randomized data.

use cvr::core::morsel::Parallelism;
use cvr::core::{ColumnEngine, EngineConfig};
use cvr::data::gen::SsbConfig;
use cvr::data::queries::all_queries;
use cvr::data::reference;
use cvr::data::workload::WorkloadConfig;
use cvr::plan::{Catalog, PhysicalChoice, Planner};
use cvr::row::designs::{RowDb, RowDesign};
use cvr::storage::io::IoSession;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn column_engine_matches_reference_on_random_data(
        seed in any::<u64>(),
        sf in 0.0004f64..0.0012,
    ) {
        let tables = Arc::new(SsbConfig { sf, seed }.generate());
        let engine = ColumnEngine::new(tables.clone());
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&tables, &q);
            prop_assert_eq!(
                engine.execute(&q, EngineConfig::FULL, &io),
                expected.clone(),
                "tICL {} seed {}", q.id, seed
            );
            prop_assert_eq!(
                engine.execute(&q, EngineConfig::parse("tiCL"), &io),
                expected,
                "tiCL {} seed {}", q.id, seed
            );
        }
    }

    #[test]
    fn row_engine_matches_reference_on_random_data(
        seed in any::<u64>(),
        sf in 0.0004f64..0.0012,
    ) {
        let tables = Arc::new(SsbConfig { sf, seed }.generate());
        let io = IoSession::unmetered();
        let trad = RowDb::build(tables.clone(), RowDesign::Traditional);
        let vp = RowDb::build(tables.clone(), RowDesign::VerticalPartitioning);
        for q in all_queries() {
            let expected = reference::evaluate(&tables, &q);
            prop_assert_eq!(trad.execute(&q, &io), expected.clone(), "T {} seed {}", q.id, seed);
            prop_assert_eq!(vp.execute(&q, &io), expected, "VP {} seed {}", q.id, seed);
        }
    }

    /// Randomly *generated* queries — not just the 13 paper queries — run
    /// through both engines under planner-chosen configurations and must
    /// match the brute-force reference evaluator.
    #[test]
    fn generated_queries_match_reference_under_planned_configs(
        seed in any::<u64>(),
        sf in 0.0004f64..0.0012,
    ) {
        let tables = Arc::new(SsbConfig { sf, seed }.generate());
        let engine = ColumnEngine::new(tables.clone());
        let planner = Planner::new(Catalog::build(&engine));
        let io = IoSession::unmetered();
        // Row builds are the expensive part: share one db per design used.
        let mut row_dbs: std::collections::HashMap<RowDesign, RowDb> =
            std::collections::HashMap::new();
        for q in (WorkloadConfig { seed, count: 12 }).generate() {
            let expected = reference::evaluate(&tables, &q);
            let plan = planner.plan(&q);
            // The planner's overall pick.
            let got = match plan.choice {
                PhysicalChoice::Column(cfg) => engine.execute_planned(
                    &q, cfg, &plan.fact_order, Parallelism::from_env(), &io,
                ),
                PhysicalChoice::Row(design) => row_dbs
                    .entry(design)
                    .or_insert_with(|| RowDb::build(tables.clone(), design))
                    .execute_planned(&q, &plan.fact_order, &io),
            };
            prop_assert_eq!(got, expected.clone(), "planned {} seed {}", q.id, seed);
            // The column engine under the best *column* candidate...
            let col_cfg = planner
                .candidates(&q)
                .into_iter()
                .find_map(|c| match c.choice {
                    PhysicalChoice::Column(cfg) => Some(cfg),
                    PhysicalChoice::Row(_) => None,
                })
                .expect("column candidates always exist");
            prop_assert_eq!(
                engine.execute_planned(&q, col_cfg, &plan.fact_order, Parallelism::from_env(), &io),
                expected.clone(),
                "column {} seed {}", q.id, seed
            );
            // ... and the row engine under the best applicable row design.
            if let Some(design) = planner.applicable_row_designs(&q).first().copied() {
                let db = row_dbs
                    .entry(design)
                    .or_insert_with(|| RowDb::build(tables.clone(), design));
                prop_assert_eq!(
                    db.execute_planned(&q, &plan.fact_order, &io),
                    expected,
                    "row {} {} seed {}", design.label(), q.id, seed
                );
            }
        }
    }
}
