//! Property tests over the whole stack: for *arbitrary* generator seeds and
//! scales, the engines must agree with the brute-force reference evaluator.
//!
//! These run fewer cases than the unit-level property tests (each case
//! builds several physical designs), but they exercise the full pipeline —
//! generation → storage → plans → execution — under randomized data.

use cvr::core::{ColumnEngine, EngineConfig};
use cvr::data::gen::SsbConfig;
use cvr::data::queries::all_queries;
use cvr::data::reference;
use cvr::row::designs::{RowDb, RowDesign};
use cvr::storage::io::IoSession;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn column_engine_matches_reference_on_random_data(
        seed in any::<u64>(),
        sf in 0.0004f64..0.0012,
    ) {
        let tables = Arc::new(SsbConfig { sf, seed }.generate());
        let engine = ColumnEngine::new(tables.clone());
        let io = IoSession::unmetered();
        for q in all_queries() {
            let expected = reference::evaluate(&tables, &q);
            prop_assert_eq!(
                engine.execute(&q, EngineConfig::FULL, &io),
                expected.clone(),
                "tICL {} seed {}", q.id, seed
            );
            prop_assert_eq!(
                engine.execute(&q, EngineConfig::parse("tiCL"), &io),
                expected,
                "tiCL {} seed {}", q.id, seed
            );
        }
    }

    #[test]
    fn row_engine_matches_reference_on_random_data(
        seed in any::<u64>(),
        sf in 0.0004f64..0.0012,
    ) {
        let tables = Arc::new(SsbConfig { sf, seed }.generate());
        let io = IoSession::unmetered();
        let trad = RowDb::build(tables.clone(), RowDesign::Traditional);
        let vp = RowDb::build(tables.clone(), RowDesign::VerticalPartitioning);
        for q in all_queries() {
            let expected = reference::evaluate(&tables, &q);
            prop_assert_eq!(trad.execute(&q, &io), expected.clone(), "T {} seed {}", q.id, seed);
            prop_assert_eq!(vp.execute(&q, &io), expected, "VP {} seed {}", q.id, seed);
        }
    }
}
