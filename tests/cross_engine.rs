//! The study's correctness backbone: every engine, every physical design,
//! every optimization configuration must return byte-identical results for
//! all thirteen SSBM queries on the same generated data.
//!
//! This is what makes the performance comparisons meaningful — the paper's
//! systems all answer the same queries; ours provably do.

use cvr::core::{ColumnEngine, DenormDb, DenormVariant, EngineConfig, RowMvDb};
use cvr::data::gen::{SsbConfig, SsbTables};
use cvr::data::queries::all_queries;
use cvr::data::reference;
use cvr::data::result::QueryOutput;
use cvr::row::designs::{RowDb, RowDesign};
use cvr::storage::io::IoSession;
use std::sync::Arc;

fn tables() -> Arc<SsbTables> {
    Arc::new(SsbConfig { sf: 0.0015, seed: 2008 }.generate())
}

fn expected(tables: &SsbTables) -> Vec<QueryOutput> {
    all_queries().iter().map(|q| reference::evaluate(tables, q)).collect()
}

#[test]
fn row_designs_match_reference() {
    let t = tables();
    let exp = expected(&t);
    let io = IoSession::unmetered();
    for design in RowDesign::ALL {
        let db = RowDb::build(t.clone(), design);
        for (q, e) in all_queries().iter().zip(&exp) {
            assert_eq!(&db.execute(q, &io), e, "{} on {}", design.label(), q.id);
        }
    }
}

#[test]
fn column_configs_match_reference() {
    let t = tables();
    let exp = expected(&t);
    let engine = ColumnEngine::new(t.clone());
    let io = IoSession::unmetered();
    for cfg in EngineConfig::all() {
        for (q, e) in all_queries().iter().zip(&exp) {
            assert_eq!(&engine.execute(q, cfg, &io), e, "{} on {}", cfg.code(), q.id);
        }
    }
}

#[test]
fn row_mv_matches_reference() {
    let t = tables();
    let exp = expected(&t);
    let db = RowMvDb::build(t.clone());
    let io = IoSession::unmetered();
    for (q, e) in all_queries().iter().zip(&exp) {
        assert_eq!(&db.execute(q, &io), e, "Row-MV on {}", q.id);
    }
}

#[test]
fn denormalized_variants_match_reference() {
    let t = tables();
    let exp = expected(&t);
    let io = IoSession::unmetered();
    for variant in
        [DenormVariant::NoCompression, DenormVariant::IntCompression, DenormVariant::MaxCompression]
    {
        let db = DenormDb::build(t.clone(), variant);
        for (q, e) in all_queries().iter().zip(&exp) {
            assert_eq!(
                &db.execute(q, EngineConfig::FULL, &io),
                e,
                "{} on {}",
                variant.label(),
                q.id
            );
        }
    }
}

#[test]
fn engines_agree_across_seeds() {
    // Different data, same invariant: row T == column tICL == column Ticl.
    let io = IoSession::unmetered();
    for seed in [1u64, 99, 777] {
        let t = Arc::new(SsbConfig { sf: 0.001, seed }.generate());
        let row = RowDb::build(t.clone(), RowDesign::Traditional);
        let col = ColumnEngine::new(t.clone());
        for q in all_queries() {
            let a = row.execute(&q, &io);
            let b = col.execute(&q, EngineConfig::FULL, &io);
            let c = col.execute(&q, EngineConfig::STRIPPED, &io);
            assert_eq!(a, b, "seed {seed} {}", q.id);
            assert_eq!(b, c, "seed {seed} {}", q.id);
        }
    }
}
