//! Deterministic (timing-free) checks of specific claims the paper makes in
//! prose — the ones that are properties of plans and storage rather than of
//! the clock.

use cvr::core::invisible::phase1_key_pred;
use cvr::core::{CStoreDb, EngineConfig};
use cvr::data::gen::SsbConfig;
use cvr::data::queries::all_queries;
use cvr::storage::io::IoSession;
use std::sync::Arc;

/// §6.3.2: "it was possible to use the between-predicate rewriting
/// optimization at least once per query."
#[test]
fn between_rewriting_applies_at_least_once_per_query() {
    let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.01, seed: 2008 }.generate()), true);
    let io = IoSession::unmetered();
    for q in all_queries() {
        let mut rewrites = 0;
        for dim in q.restricted_dims() {
            let kp =
                phase1_key_pred(&db, &q, dim, EngineConfig::FULL, &io).expect("restricted dim");
            if kp.kind() == "between" {
                rewrites += 1;
            }
        }
        assert!(rewrites >= 1, "{}: no join rewrote to a between-predicate", q.id);
    }
}

/// §6.3.2: "The primary sort column, orderdate, only contains 2405 unique
/// values, and so the average run-length for this column is almost 25,000."
/// Scale-adjusted: the RLE orderdate column must have exactly one run per
/// distinct date, so average run length = rows / distinct dates.
#[test]
fn orderdate_rle_runs_equal_distinct_dates() {
    let tables = Arc::new(SsbConfig { sf: 0.01, seed: 2008 }.generate());
    let distinct: std::collections::HashSet<i64> =
        tables.lineorder.column("lo_orderdate").ints().iter().copied().collect();
    let db = CStoreDb::build(tables.clone(), true);
    let od = db.fact.column("lo_orderdate").column.as_int();
    assert!(od.is_rle(), "sorted orderdate must be RLE under compression");
    assert_eq!(od.runs().len(), distinct.len());
    let avg_run = tables.lineorder.num_rows() as f64 / distinct.len() as f64;
    assert!(avg_run > 10.0, "runs long enough for RLE to pay: {avg_run}");
}

/// §5.4.2: "a range predicate on a non-sorted field results in
/// non-contiguous result positions" — and conversely the DATE dimension's
/// hierarchy (year → yearmonth → date) stays contiguous because the table
/// is sorted by datekey.
#[test]
fn date_hierarchy_predicates_stay_contiguous() {
    use cvr::core::scan::scan_pred;
    use cvr::data::queries::Pred;
    use cvr::data::schema::Dim;
    use cvr::data::value::Value;
    let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.005, seed: 3 }.generate()), true);
    let io = IoSession::unmetered();
    let date = &db.dim(Dim::Date).store;
    for (col, pred) in [
        ("d_year", Pred::Eq(Value::Int(1995))),
        ("d_year", Pred::Between(Value::Int(1993), Value::Int(1996))),
        ("d_yearmonthnum", Pred::Eq(Value::Int(199407))),
        ("d_yearmonth", Pred::Eq(Value::str("Dec1997"))),
    ] {
        let pl = scan_pred(date.column(col), &pred, true, &io);
        assert!(pl.is_contiguous(), "{col} predicate must select a contiguous range");
        assert!(!pl.is_empty());
    }
    // A predicate on a non-sorted date attribute is NOT contiguous.
    let pl = scan_pred(date.column("d_weeknuminyear"), &Pred::Eq(Value::Int(6)), true, &io);
    assert!(!pl.is_contiguous(), "week-of-year repeats every year");
}

/// §5.4.1: dimension keys of CUSTOMER/SUPPLIER/PART are "a sorted,
/// contiguous list of identifiers starting from [0]" after reassignment, so
/// the foreign key *is* the row position; DATE keys are not.
#[test]
fn key_reassignment_matches_paper_description() {
    use cvr::data::schema::Dim;
    let db = CStoreDb::build(Arc::new(SsbConfig { sf: 0.005, seed: 3 }.generate()), true);
    for d in [Dim::Customer, Dim::Supplier, Dim::Part] {
        assert!(db.dim(d).dense_keys);
        let keys = db.dim(d).sorted.column(d.key_column()).ints();
        assert!(keys.iter().enumerate().all(|(i, &k)| k == i as i64));
    }
    assert!(!db.dim(Dim::Date).dense_keys);
    let dk = db.dim(Dim::Date).sorted.column("d_datekey").ints();
    assert!(dk.windows(2).all(|w| w[0] < w[1]), "datekeys sorted");
    assert_ne!(dk[1], 1, "datekeys must stay yyyymmdd, not dense");
}

/// §6.2 discussion: "scanning just four of the columns in the vertical
/// partitioning approach will take as long as scanning the entire fact
/// table in the traditional approach" — i.e. 4 VP column tables ≈ 1 full
/// heap, in bytes.
#[test]
fn four_vp_columns_cost_one_traditional_scan() {
    use cvr::row::designs::{TraditionalDb, TraditionalOptions, VpDb};
    let tables = Arc::new(SsbConfig { sf: 0.01, seed: 9 }.generate());
    let trad = TraditionalDb::build(
        tables.clone(),
        TraditionalOptions { partitioned: false, bitmap_indexes: false, use_bloom: false },
    );
    let vp = VpDb::build(tables.clone());
    let four_cols = 4 * vp.fact_column_bytes("lo_revenue");
    let whole = trad.fact_bytes();
    let ratio = four_cols as f64 / whole as f64;
    assert!(
        (0.5..=1.5).contains(&ratio),
        "4 VP columns ≈ whole traditional table; got ratio {ratio:.2}"
    );
}
