//! I/O-accounting invariants: the deterministic half of the paper's claims.
//!
//! Timing depends on the machine, but *bytes moved* do not — and most of
//! the paper's Figure 5/6 story is bytes. These tests pin the byte-level
//! orderings that the performance results rest on.

use cvr::core::{ColumnEngine, EngineConfig, RowMvDb};
use cvr::data::gen::{SsbConfig, SsbTables};
use cvr::data::queries::{all_queries, query};
use cvr::row::designs::{RowDb, RowDesign, TraditionalDb, TraditionalOptions, VpDb};
use cvr::storage::io::{BufferPool, IoSession};
use std::sync::Arc;

fn tables() -> Arc<SsbTables> {
    Arc::new(SsbConfig { sf: 0.004, seed: 6 }.generate())
}

/// Cold-cache bytes for one execution.
fn cold_bytes(exec: impl Fn(&IoSession)) -> u64 {
    let io = IoSession::new(BufferPool::new(1 << 20)); // 32 pages: scans always spill
    exec(&io);
    io.stats().bytes_read
}

#[test]
fn column_store_reads_less_than_row_store() {
    let t = tables();
    let row = RowDb::build(t.clone(), RowDesign::Traditional);
    let col = ColumnEngine::new(t.clone());
    for q in all_queries() {
        let rs = cold_bytes(|io| {
            row.execute(&q, io);
        });
        let cs = cold_bytes(|io| {
            col.execute(&q, EngineConfig::FULL, io);
        });
        assert!(cs < rs, "{}: CS read {cs} vs RS {rs}", q.id);
    }
}

#[test]
fn compression_reduces_column_store_io() {
    let t = tables();
    let col = ColumnEngine::new(t.clone());
    for q in all_queries() {
        let compressed = cold_bytes(|io| {
            col.execute(&q, EngineConfig::parse("tICL"), io);
        });
        let plain = cold_bytes(|io| {
            col.execute(&q, EngineConfig::parse("tIcL"), io);
        });
        assert!(compressed <= plain, "{}: {compressed} vs {plain}", q.id);
    }
}

#[test]
fn late_materialization_reads_less_than_early() {
    let t = tables();
    let col = ColumnEngine::new(t.clone());
    for q in all_queries() {
        let late = cold_bytes(|io| {
            col.execute(&q, EngineConfig::parse("tIcL"), io);
        });
        let early = cold_bytes(|io| {
            col.execute(&q, EngineConfig::parse("Ticl"), io);
        });
        // EM decodes every needed column in full; LM only extracts
        // surviving positions. (Equal only if a query selects everything.)
        assert!(late <= early, "{}: late {late} vs early {early}", q.id);
    }
}

#[test]
fn mv_reads_less_than_traditional_everywhere() {
    let t = tables();
    let trad = RowDb::build(t.clone(), RowDesign::Traditional);
    let mv = RowDb::build(t.clone(), RowDesign::MaterializedViews);
    for q in all_queries() {
        let a = cold_bytes(|io| {
            mv.execute(&q, io);
        });
        let b = cold_bytes(|io| {
            trad.execute(&q, io);
        });
        assert!(a <= b, "{}: MV {a} vs T {b}", q.id);
    }
}

#[test]
fn vp_reads_more_than_cstore_per_column() {
    // The §6.2 size claim: a VP column table costs ~16 bytes/row on disk
    // against ≤4 for a C-Store column.
    let t = tables();
    let vp = VpDb::build(t.clone());
    let col = ColumnEngine::new(t.clone());
    let rows = t.lineorder.num_rows() as u64;
    let vp_bytes = vp.fact_column_bytes("lo_revenue");
    let cs_bytes = col.db(EngineConfig::FULL).fact.column("lo_revenue").bytes();
    assert!(vp_bytes >= rows * 15, "VP per-row overhead missing: {vp_bytes}");
    assert!(cs_bytes <= rows * 4, "C-Store column too fat: {cs_bytes}");
    assert!(vp_bytes / cs_bytes >= 3, "paper's 4x overhead ratio lost");
}

#[test]
fn partition_pruning_reduces_io_for_date_restricted_queries() {
    let t = tables();
    let part = TraditionalDb::build(
        t.clone(),
        TraditionalOptions { partitioned: true, bitmap_indexes: false, use_bloom: true },
    );
    let whole = TraditionalDb::build(
        t.clone(),
        TraditionalOptions { partitioned: false, bitmap_indexes: false, use_bloom: true },
    );
    // Q1.1 restricts to one year of seven.
    let q = query(1, 1);
    let pruned = cold_bytes(|io| {
        part.execute(&q, io);
    });
    let full = cold_bytes(|io| {
        whole.execute(&q, io);
    });
    assert!(
        (pruned as f64) < full as f64 * 0.5,
        "pruning should skip most partitions: {pruned} vs {full}"
    );
    // Q2.1 has no date restriction: no pruning possible.
    let q = query(2, 1);
    let a = cold_bytes(|io| {
        part.execute(&q, io);
    });
    let b = cold_bytes(|io| {
        whole.execute(&q, io);
    });
    assert!(a as f64 > b as f64 * 0.9, "unpruned scan should read it all");
}

#[test]
fn row_mv_reads_at_least_row_store_mv_bytes() {
    // "CS (Row-MV)" reads the same logical data as "RS (MV)" — stored as
    // strings it is, if anything, bigger.
    let t = tables();
    let row_mv = RowDb::build(t.clone(), RowDesign::MaterializedViews);
    let cs_row_mv = RowMvDb::build(t.clone());
    for q in all_queries() {
        let rs = cold_bytes(|io| {
            row_mv.execute(&q, io);
        });
        let cs = cold_bytes(|io| {
            cs_row_mv.execute(&q, io);
        });
        assert!(cs * 3 > rs, "{}: Row-MV bytes implausibly small", q.id);
    }
}

#[test]
fn invisible_join_reads_only_touched_columns() {
    let t = tables();
    let col = ColumnEngine::new(t.clone());
    // Q1.1 touches 4 fact columns; bytes must be well under the whole
    // uncompressed fact table.
    let q = query(1, 1);
    let bytes = cold_bytes(|io| {
        col.execute(&q, EngineConfig::parse("tIcL"), io);
    });
    let whole = col.db(EngineConfig::parse("tIcL")).fact_bytes();
    assert!(bytes < whole / 3, "Q1.1 should read ~4/17 of the fact table: {bytes} vs {whole}");
}
