//! Workspace smoke test: the cross-engine contract, end to end, in seconds.
//!
//! CI runs this on every push. It asserts the full catalog of thirteen SSBM
//! queries agrees between the column engine and the brute-force reference
//! evaluator at a tiny scale factor — generation → physical design → plan →
//! execution, the whole pipeline. `tests/cross_engine.rs` covers every
//! engine × design × configuration combination more thoroughly; this file
//! is the fast canary whose failure message should be the first thing a
//! broken PR sees.

use cvr::core::{ColumnEngine, EngineConfig};
use cvr::data::gen::SsbConfig;
use cvr::data::queries::all_queries;
use cvr::data::reference;
use cvr::storage::io::IoSession;
use std::sync::Arc;

#[test]
fn all_thirteen_queries_agree_with_reference_at_tiny_scale() {
    let tables = Arc::new(SsbConfig { sf: 0.0008, seed: 42 }.generate());
    let engine = ColumnEngine::new(tables.clone());
    let io = IoSession::unmetered();

    let queries = all_queries();
    assert_eq!(queries.len(), 13, "SSBM is four flights totalling 13 queries");

    for q in &queries {
        let expected = reference::evaluate(&tables, q);
        assert_eq!(
            engine.execute(q, EngineConfig::FULL, &io),
            expected,
            "ColumnEngine disagrees with the reference evaluator on {}",
            q.id
        );
    }
}
